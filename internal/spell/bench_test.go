package spell_test

// Microbenchmarks for the Spell matching layer, each run for the indexed
// matcher and the seed (naive) reference so the win is visible in one
// `go test -bench` invocation:
//
//	go test -bench 'Consume|Lookup|Cache' -benchmem ./internal/spell/
//
// BenchmarkConsumeColdStart measures training from an empty parser (the
// LCS merge path dominates); BenchmarkLookupSteadyState measures the
// detection-phase positional lookup on a trained parser; the cache
// benchmarks isolate LookupCache hit and miss costs.

import (
	"fmt"
	"testing"

	"intellog/internal/spell"
)

// benchCorpus synthesizes a log stream shaped like the simulated
// analytics corpora: ~40 distinct templates, each rendered with varying
// identifier fields, interleaved.
func benchCorpus(n int) [][]string {
	templates := []string{
		"fetcher#%d about to shuffle output of map attempt_%d",
		"fetcher#%d read %d bytes from map-output for attempt_%d",
		"host%d:13562 freed by fetcher#%d in %dms",
		"Got assigned task %d",
		"Starting task %d in stage %d TID %d",
		"Finished task %d in stage %d TID %d in %d ms",
		"Registering block manager host%d:%d",
		"Added broadcast_%d_piece%d in memory on host%d:%d",
		"Launching container container_%d_%d for application_%d",
		"Progress of TaskAttempt attempt_%d is %d",
		"Reduce slow start threshold reached scheduling %d reducers",
		"Task attempt_%d is done and is in the process of committing",
		"Saved output of task attempt_%d to hdfs://out/%d",
		"Received completed container container_%d_%d",
		"Assigned container container_%d_%d to attempt_%d",
		"Starting executor ID %d on host host%d",
		"Removed broadcast_%d_piece%d on host%d:%d in memory",
		"Submitting %d missing tasks from stage %d",
		"Lost executor %d on host%d heartbeat timed out",
		"Shuffle files lost for executor %d on host%d",
	}
	var out [][]string
	i := 0
	for len(out) < n {
		for _, tpl := range templates {
			msg := fmt.Sprintf(tpl, i%7, i*31%1000, i%13, i*17%500)
			out = append(out, toksOf(msg))
			i++
			if len(out) == n {
				break
			}
		}
	}
	return out
}

func toksOf(msg string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(msg); i++ {
		if i == len(msg) || msg[i] == ' ' {
			if start >= 0 {
				out = append(out, msg[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return out
}

func BenchmarkConsumeColdStart(b *testing.B) {
	corpus := benchCorpus(2000)
	for _, bc := range []struct {
		name string
		mk   func() *spell.Parser
	}{
		{"indexed", func() *spell.Parser { return spell.NewParser(0) }},
		{"naive", func() *spell.Parser { return spell.NewNaiveParser(0) }},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := bc.mk()
				for _, m := range corpus {
					p.Consume(m)
				}
			}
			b.ReportMetric(float64(len(corpus)), "msgs")
		})
	}
}

func BenchmarkLookupSteadyState(b *testing.B) {
	corpus := benchCorpus(2000)
	for _, bc := range []struct {
		name string
		mk   func() *spell.Parser
	}{
		{"indexed", func() *spell.Parser { return spell.NewParser(0) }},
		{"naive", func() *spell.Parser { return spell.NewNaiveParser(0) }},
	} {
		b.Run(bc.name, func(b *testing.B) {
			p := bc.mk()
			for _, m := range corpus {
				p.Consume(append([]string(nil), m...))
			}
			// Later merges can change a key's length, so not every trained
			// message still matches; bench over the ones that do (the
			// steady-state detection case).
			var matching [][]string
			for _, m := range corpus {
				if p.Lookup(m) != nil {
					matching = append(matching, m)
				}
			}
			if len(matching) == 0 {
				b.Fatal("no trained message matches")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if p.Lookup(matching[i%len(matching)]) == nil {
					b.Fatal("matching message failed to match")
				}
			}
		})
	}
}

func BenchmarkLookupCacheHit(b *testing.B) {
	corpus := benchCorpus(256)
	p := spell.NewParser(0)
	c := spell.NewLookupCache(0)
	msgs := make([]string, len(corpus))
	for i, m := range corpus {
		k := p.Consume(append([]string(nil), m...))
		msgs[i] = fmt.Sprint(m)
		c.Add(msgs[i], k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, hit := c.Get(msgs[i%len(msgs)]); !hit {
			b.Fatal("expected hit")
		}
	}
}

func BenchmarkLookupCacheMiss(b *testing.B) {
	c := spell.NewLookupCache(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg := fmt.Sprintf("never seen message %d", i)
		if _, hit := c.Get(msg); hit {
			b.Fatal("unexpected hit")
		}
		c.Add(msg, nil)
	}
}
