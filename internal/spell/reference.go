package spell

// The seed linear-scan matcher, preserved verbatim behind Parser.naive.
// Equivalence tests (equivalence_test.go) run randomized corpora through
// both matchers and require byte-identical keys; the ablation benchmarks
// in bench_test.go quantify what the indexed path buys.
//
// One cleanup versus the seed: tryMergeRef drops the seed's unreachable
// wildcard-collapse arm (`else if … tok == Wildcard` nested under the
// aligned branch, which can only run when tok != Wildcard). The arm never
// executed, so behaviour is unchanged — TestMergeKeepsAlignedWildcards
// pins the resulting (unchanged) semantics: aligned wildcards are kept
// as-is, only divergent runs collapse to a single wildcard.

// consumeNaive is the seed Consume: positional scan of the same-length
// bucket, then an LCS pass over every key in the length window.
func (p *Parser) consumeNaive(tokens []string) *Key {
	if len(tokens) == 0 {
		return nil
	}
	for _, k := range p.byLen[len(tokens)] {
		if positionalMatch(k.Tokens, tokens) {
			k.Count++
			return k
		}
	}
	var best *Key
	var bestMerged []string
	bestConst := 0
	for l := len(tokens)/2 + len(tokens)%2; l <= len(tokens)*2; l++ {
		for _, k := range p.byLen[l] {
			merged, ok := tryMergeRef(k.Tokens, tokens)
			if !ok && !p.classicLCS {
				continue
			}
			maxLen := len(tokens)
			if len(k.Tokens) > maxLen {
				maxLen = len(k.Tokens)
			}
			if float64(len(merged))*p.t < float64(maxLen) {
				continue
			}
			c := len(merged) - countWildcards(merged)
			if c == 0 {
				continue
			}
			if c > bestConst {
				best, bestMerged, bestConst = k, merged, c
			}
		}
	}
	if best != nil {
		if len(bestMerged) != len(best.Tokens) {
			p.reindexNaive(best, bestMerged)
		} else {
			best.Tokens = bestMerged
		}
		best.Count++
		return best
	}
	k := &Key{ID: len(p.keys), Tokens: append([]string(nil), tokens...), Sample: append([]string(nil), tokens...), Count: 1}
	p.keys = append(p.keys, k)
	p.byLen[len(tokens)] = append(p.byLen[len(tokens)], k)
	return k
}

// lookupNaive is the seed Lookup: an in-order scan of the same-length
// bucket.
func (p *Parser) lookupNaive(tokens []string) *Key {
	for _, k := range p.byLen[len(tokens)] {
		if positionalMatch(k.Tokens, tokens) {
			return k
		}
	}
	return nil
}

// reindexNaive moves a key between length buckets after a merge changed
// its token count.
func (p *Parser) reindexNaive(k *Key, merged []string) {
	old := p.byLen[len(k.Tokens)]
	for i, kk := range old {
		if kk == k {
			p.byLen[len(k.Tokens)] = append(old[:i], old[i+1:]...)
			break
		}
	}
	k.Tokens = merged
	p.byLen[len(merged)] = append(p.byLen[len(merged)], k)
}

// tryMergeRef aligns key and tokens by LCS and produces the merged key:
// aligned tokens stay, divergent runs collapse to a single Wildcard. ok is
// false if any divergent token is not variable-looking.
func tryMergeRef(key, tokens []string) ([]string, bool) {
	n, m := len(key), len(tokens)
	dp := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int, m+1)
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			if key[i-1] == tokens[j-1] || key[i-1] == Wildcard {
				dp[i][j] = dp[i-1][j-1] + 1
			} else if dp[i-1][j] >= dp[i][j-1] {
				dp[i][j] = dp[i-1][j]
			} else {
				dp[i][j] = dp[i][j-1]
			}
		}
	}
	// Backtrack, building the merged sequence in reverse.
	var rev []string
	ok := true
	i, j := n, m
	pendingGap := false
	flushGap := func() {
		if pendingGap {
			if len(rev) == 0 || rev[len(rev)-1] != Wildcard {
				rev = append(rev, Wildcard)
			}
			pendingGap = false
		}
	}
	for i > 0 && j > 0 {
		if key[i-1] == tokens[j-1] || key[i-1] == Wildcard {
			flushGap()
			rev = append(rev, key[i-1])
			i--
			j--
			continue
		}
		if dp[i-1][j] >= dp[i][j-1] {
			if !variableLooking(key[i-1]) {
				ok = false
			}
			pendingGap = true
			i--
		} else {
			if !variableLooking(tokens[j-1]) {
				ok = false
			}
			pendingGap = true
			j--
		}
	}
	for i > 0 {
		if !variableLooking(key[i-1]) {
			ok = false
		}
		pendingGap = true
		i--
	}
	for j > 0 {
		if !variableLooking(tokens[j-1]) {
			ok = false
		}
		pendingGap = true
		j--
	}
	flushGap()
	// Reverse.
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev, ok
}
