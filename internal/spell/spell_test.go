package spell

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func toks(s string) []string { return strings.Fields(s) }

func TestConsumeCreatesAndMerges(t *testing.T) {
	p := NewParser(0)
	k1 := p.Consume(toks("Got assigned task 1"))
	k2 := p.Consume(toks("Got assigned task 5"))
	if k1 != k2 {
		t.Fatalf("same template produced two keys: %q vs %q", k1, k2)
	}
	if k1.String() != "Got assigned task *" {
		t.Errorf("key = %q, want 'Got assigned task *'", k1.String())
	}
	if k1.Count != 2 {
		t.Errorf("Count = %d, want 2", k1.Count)
	}
	if k1.NumWildcards() != 1 {
		t.Errorf("NumWildcards = %d, want 1", k1.NumWildcards())
	}
}

func TestConsumeKeepsVerbVariantsSeparate(t *testing.T) {
	p := NewParser(0)
	a := p.Consume(toks("Registering block manager host1:38211"))
	b := p.Consume(toks("Registered block manager host1:38211"))
	if a == b {
		t.Fatalf("'Registering' and 'Registered' merged into %q", a)
	}
	if len(p.Keys()) != 2 {
		t.Errorf("got %d keys, want 2", len(p.Keys()))
	}
}

func TestConsumeFigure1Keys(t *testing.T) {
	p := NewParser(0)
	msgs := []string{
		"fetcher#1 about to shuffle output of map attempt_01",
		"fetcher#2 about to shuffle output of map attempt_02",
		"fetcher#1 read 2264 bytes from map-output for attempt_01",
		"fetcher#2 read 108 bytes from map-output for attempt_02",
		"host1:13562 freed by fetcher#1 in 4ms",
		"host2:13562 freed by fetcher#2 in 11ms",
	}
	for _, m := range msgs {
		p.Consume(toks(m))
	}
	keys := p.Keys()
	if len(keys) != 3 {
		for _, k := range keys {
			t.Logf("key: %s", k)
		}
		t.Fatalf("got %d keys, want 3", len(keys))
	}
	if got := keys[0].String(); got != "* about to shuffle output of map *" {
		t.Errorf("key 0 = %q", got)
	}
	if got := keys[2].String(); got != "* freed by * in *" {
		t.Errorf("key 2 = %q", got)
	}
}

func TestSampleRetained(t *testing.T) {
	p := NewParser(0)
	k := p.Consume(toks("Starting MapTask metrics system"))
	p.Consume(toks("Starting ReduceTask metrics system"))
	// Wait: ReduceTask vs MapTask are alphabetic — merge must be refused.
	if len(p.Keys()) != 2 {
		t.Fatalf("alphabetic-divergent messages merged; keys = %d", len(p.Keys()))
	}
	if !reflect.DeepEqual(k.Sample, toks("Starting MapTask metrics system")) {
		t.Errorf("Sample = %v", k.Sample)
	}
}

func TestLookupDoesNotMutate(t *testing.T) {
	p := NewParser(0)
	p.Consume(toks("Got assigned task 1"))
	p.Consume(toks("Got assigned task 2"))
	if k := p.Lookup(toks("Got assigned task 99")); k == nil {
		t.Error("Lookup failed to match wildcard key")
	}
	if k := p.Lookup(toks("completely different message here")); k != nil {
		t.Errorf("Lookup matched unrelated message: %q", k)
	}
	if len(p.Keys()) != 1 {
		t.Errorf("Lookup created keys: %d", len(p.Keys()))
	}
}

func TestMergeCollapsesGapToSingleWildcard(t *testing.T) {
	p := NewParser(0)
	p.Consume(toks("read 10 20 bytes"))
	k := p.Consume(toks("read 999 bytes"))
	if got := k.String(); got != "read * bytes" {
		t.Errorf("merged key = %q, want 'read * bytes'", got)
	}
}

// TestMergeKeepsAlignedWildcards pins the merge semantics around the
// seed's unreachable wildcard-collapse arm (removed in tryMergeRef):
// wildcards already in the key stay where they are — even adjacent ones —
// and only divergent runs collapse to a single wildcard. Both the
// reference and the interned-ID merge must agree.
func TestMergeKeepsAlignedWildcards(t *testing.T) {
	key := toks("a * * b")
	msg := toks("a x_1 y_2 b")
	want := "a * * b"
	for _, impl := range []struct {
		name  string
		merge func(key, msg []string) ([]string, bool)
	}{
		{"reference", tryMergeRef},
		{"indexed", TryMergeIDsForTest},
	} {
		merged, ok := impl.merge(key, msg)
		if !ok {
			t.Errorf("%s: merge rejected", impl.name)
		}
		if got := strings.Join(merged, " "); got != want {
			t.Errorf("%s: merged = %q, want %q", impl.name, got, want)
		}
		// A divergent run next to an aligned wildcard must not add a
		// second wildcard.
		merged, ok = impl.merge(toks("read * bytes"), toks("read 10 20 bytes"))
		if !ok {
			t.Errorf("%s: gap merge rejected", impl.name)
		}
		if got := strings.Join(merged, " "); got != "read * bytes" {
			t.Errorf("%s: gap merged = %q, want 'read * bytes'", impl.name, got)
		}
	}
}

func TestPositionalMatch(t *testing.T) {
	if !positionalMatch(toks("a * c"), toks("a b c")) {
		t.Error("wildcard should match")
	}
	if positionalMatch(toks("a * c"), toks("a b d")) {
		t.Error("mismatched constant matched")
	}
	if positionalMatch(toks("a *"), toks("a b c")) {
		t.Error("length mismatch matched")
	}
}

func TestLCSLen(t *testing.T) {
	if got := lcsLen(toks("a b c d"), toks("a x c y")); got != 2 {
		t.Errorf("lcsLen = %d, want 2", got)
	}
	if got := lcsLen(toks("* b"), toks("z b")); got != 2 {
		t.Errorf("wildcard lcsLen = %d, want 2", got)
	}
	if got := lcsLen(nil, toks("a")); got != 0 {
		t.Errorf("empty lcsLen = %d", got)
	}
}

func TestConsumeEmpty(t *testing.T) {
	p := NewParser(0)
	if k := p.Consume(nil); k != nil {
		t.Error("Consume(nil) should return nil")
	}
}

func TestThresholdRejectsDissimilar(t *testing.T) {
	p := NewParser(1.7)
	p.Consume(toks("alpha_1 beta_2 gamma_3 delta_4 epsilon_5"))
	p.Consume(toks("alpha_1 zeta_9 eta_8 theta_7 iota_6"))
	// LCS = 1 of 5; 1*1.7 < 5, so these must not merge.
	if len(p.Keys()) != 2 {
		t.Errorf("dissimilar messages merged; keys = %d", len(p.Keys()))
	}
}

// Property: consuming the same message twice never creates a second key,
// and the second consume returns the first key.
func TestPropertyIdempotentConsume(t *testing.T) {
	f := func(words []uint8) bool {
		if len(words) == 0 || len(words) > 12 {
			return true
		}
		tokens := make([]string, len(words))
		for i, w := range words {
			tokens[i] = fmt.Sprintf("w%d", w%7)
		}
		p := NewParser(0)
		k1 := p.Consume(tokens)
		k2 := p.Consume(tokens)
		return k1 == k2 && len(p.Keys()) == 1 && k1.Count == 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a key always positionally matches the messages that formed it
// when they have the key's length.
func TestPropertyKeyMatchesOrigin(t *testing.T) {
	f := func(a, b uint16) bool {
		m1 := toks(fmt.Sprintf("task %d finished on host", a))
		m2 := toks(fmt.Sprintf("task %d finished on host", b))
		p := NewParser(0)
		p.Consume(m1)
		k := p.Consume(m2)
		return positionalMatch(k.Tokens, m1) && positionalMatch(k.Tokens, m2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkConsume(b *testing.B) {
	msgs := make([][]string, 0, 64)
	for i := 0; i < 64; i++ {
		msgs = append(msgs, toks(fmt.Sprintf("fetcher#%d read %d bytes from map-output for attempt_%d", i%4, i*137, i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewParser(0)
		for _, m := range msgs {
			p.Consume(m)
		}
	}
}

func TestClassicParserConflates(t *testing.T) {
	// Under the original LCS rule these two statements merge; the guard
	// keeps them apart (they differ in a constant verb).
	msgs := []string{
		"Registering block manager host1:38211",
		"Registered block manager host1:38211",
	}
	classic := NewClassicParser(0)
	guarded := NewParser(0)
	for _, m := range msgs {
		classic.Consume(toks(m))
		guarded.Consume(toks(m))
	}
	if len(classic.Keys()) != 1 {
		t.Errorf("classic keys = %d, want 1 (conflated)", len(classic.Keys()))
	}
	if len(guarded.Keys()) != 2 {
		t.Errorf("guarded keys = %d, want 2", len(guarded.Keys()))
	}
}

func TestRestoreLookup(t *testing.T) {
	p := NewParser(0)
	p.Consume(toks("Got assigned task 1"))
	p.Consume(toks("Got assigned task 2"))
	restored := Restore(0, p.Keys())
	if restored.Lookup(toks("Got assigned task 7")) == nil {
		t.Error("restored parser cannot look up")
	}
	if len(restored.Keys()) != 1 {
		t.Errorf("restored keys = %d", len(restored.Keys()))
	}
	// Restored parser keeps consuming correctly.
	k := restored.Consume(toks("Got assigned task 9"))
	if k == nil || len(restored.Keys()) != 1 {
		t.Error("restored parser consume broken")
	}
}
