package spell

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// LookupCache memoizes Parser.Lookup by raw message text. Analytics logs
// repeat a few thousand distinct renderings millions of times (the same
// template with the same values — heartbeats, progress lines, idempotent
// retries), so an exact-message cache turns the per-record
// Tokenize+Lookup cost into a single map probe for every repeat.
//
// Misses are cached too (key == nil): an unmatched rendering stays
// unmatched for as long as the parser's keys are fixed, and anomaly
// streams tend to repeat the same unexpected message.
//
// The cache is only sound while the parser's keys are no longer being
// refined — i.e. after training, which is exactly when BindSession and
// the detectors run. It is safe for concurrent use; hits take only a
// read lock while the cache is under half capacity (recency order is
// irrelevant until eviction is near), so concurrent readers do not
// serialize on the common path.
type LookupCache struct {
	mu           sync.RWMutex
	cap          int
	ll           *list.List // front = most recently used
	m            map[string]*list.Element
	len          atomic.Int64 // mirrors ll.Len() for lock-free reads
	hits, misses atomic.Uint64
}

// cacheEntry is one LRU node.
type cacheEntry struct {
	msg string
	key *Key // nil for a cached miss
	// aux carries caller-owned derived data for msg (e.g. its token
	// split, or a bound message prototype) so a hit can skip recomputing
	// it. Opaque to the cache.
	aux any
}

// DefaultLookupCacheSize bounds a cache built with capacity ≤ 0. 64k
// distinct renderings cover the working set of every corpus in the
// evaluation with room to spare, at a few MB worst case.
const DefaultLookupCacheSize = 1 << 16

// NewLookupCache returns an empty cache holding at most capacity distinct
// messages; capacity ≤ 0 uses DefaultLookupCacheSize.
func NewLookupCache(capacity int) *LookupCache {
	if capacity <= 0 {
		capacity = DefaultLookupCacheSize
	}
	return &LookupCache{
		cap: capacity,
		ll:  list.New(),
		m:   make(map[string]*list.Element, 1024),
	}
}

// Get returns the cached key for msg. hit distinguishes a cached miss
// (nil, true) from an absent entry (nil, false).
func (c *LookupCache) Get(msg string) (key *Key, hit bool) {
	key, _, hit = c.GetAux(msg)
	return key, hit
}

// GetAux is Get returning the entry's aux value as well.
func (c *LookupCache) GetAux(msg string) (key *Key, aux any, hit bool) {
	// Fast path: while the cache is under half capacity no entry is close
	// to eviction, so recency bookkeeping can be skipped and hits served
	// under the shared lock. Entries are immutable once linked (AddAux
	// replaces fields under the write lock, which excludes readers).
	if c.len.Load() < int64(c.cap/2) {
		c.mu.RLock()
		e, ok := c.m[msg]
		if ok {
			ent := e.Value.(*cacheEntry)
			key, aux = ent.key, ent.aux
		}
		c.mu.RUnlock()
		if ok {
			c.hits.Add(1)
			return key, aux, true
		}
		c.misses.Add(1)
		return nil, nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[msg]; ok {
		c.ll.MoveToFront(e)
		c.hits.Add(1)
		ent := e.Value.(*cacheEntry)
		return ent.key, ent.aux, true
	}
	c.misses.Add(1)
	return nil, nil, false
}

// Peek probes the cache with raw message bytes, returning the canonical
// stored string for msg on a hit. It is the zero-copy entry point of the
// ingest path: a decoder holding a []byte view resolves it to the
// interned rendering the model already owns without materializing a
// string first (the map probe compiles to a no-alloc lookup). Peek takes
// only the read lock and touches neither recency order nor the hit/miss
// counters — it is a side-effect-free probe, so a decoder consulting it
// ahead of detection does not double-count the record's real lookup.
func (c *LookupCache) Peek(msg []byte) (canon string, key *Key, aux any, hit bool) {
	c.mu.RLock()
	e, ok := c.m[string(msg)] // no-alloc lookup
	if ok {
		ent := e.Value.(*cacheEntry)
		canon, key, aux = ent.msg, ent.key, ent.aux
	}
	c.mu.RUnlock()
	return canon, key, aux, ok
}

// AddHits folds n hits into the hit counter in one atomic add. Worker-
// local memo layers (the detector's per-scratch L1) count their hits
// locally and flush here when the scratch retires, so the shared counter
// stays accurate without a contended atomic per record.
func (c *LookupCache) AddHits(n uint64) {
	if n > 0 {
		c.hits.Add(n)
	}
}

// Add records the lookup result for msg (key may be nil), evicting the
// least recently used entry when full.
func (c *LookupCache) Add(msg string, key *Key) { c.AddAux(msg, key, nil) }

// AddAux is Add attaching an opaque aux value to the entry.
func (c *LookupCache) AddAux(msg string, key *Key, aux any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[msg]; ok {
		ent := e.Value.(*cacheEntry)
		ent.key, ent.aux = key, aux
		c.ll.MoveToFront(e)
		return
	}
	c.m[msg] = c.ll.PushFront(&cacheEntry{msg: msg, key: key, aux: aux})
	if c.ll.Len() > c.cap {
		e := c.ll.Back()
		c.ll.Remove(e)
		delete(c.m, e.Value.(*cacheEntry).msg)
	}
	c.len.Store(int64(c.ll.Len()))
}

// Len returns the number of cached messages.
func (c *LookupCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ll.Len()
}

// Stats returns the hit/miss counters.
func (c *LookupCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
