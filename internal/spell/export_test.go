package spell

// Test-only exports. The naive reference matcher stays unexported in
// production code; equivalence tests and ablation benchmarks reach it
// through this shim.

// NewNaiveParser returns a Parser running the seed linear-scan matcher.
var NewNaiveParser = newNaiveParser

// NewNaiveClassicParser is the naive matcher without the constant-word
// merge guard.
func NewNaiveClassicParser(t float64) *Parser {
	p := newNaiveParser(t)
	p.classicLCS = true
	return p
}

// TryMergeRef exposes the reference LCS merge.
var TryMergeRef = tryMergeRef

// RestoreNaiveParser is the seed Restore: rebuild byLen buckets around
// existing keys, on a parser routed through the naive matcher.
func RestoreNaiveParser(t float64, keys []*Key) *Parser {
	p := newNaiveParser(t)
	for _, k := range keys {
		p.keys = append(p.keys, k)
		p.byLen[len(k.Tokens)] = append(p.byLen[len(k.Tokens)], k)
	}
	return p
}

// TryMergeIDsForTest runs the interned-ID merge on raw token strings via
// a throwaway interner and maps the result back to strings.
func TryMergeIDsForTest(key, msg []string) ([]string, bool) {
	in := newInterner()
	kids := make([]int32, len(key))
	for i, t := range key {
		kids[i] = in.intern(t)
	}
	mids := make([]int32, len(msg))
	for i, t := range msg {
		mids[i] = in.intern(t)
	}
	var s mergeScratch
	merged, ok := tryMergeIDs(kids, mids, in, &s)
	out := make([]string, len(merged))
	for i, id := range merged {
		out[i] = in.token(id)
	}
	return out, ok
}
