package spell_test

// Native fuzz target for the Spell matcher: whatever line stream the
// fuzzer invents, the indexed matcher must stay byte-equivalent to the
// seed linear-scan reference — same per-message key assignment, same key
// set, and agreeing lookups afterwards. This is the equivalence suite's
// contract (equivalence_test.go) driven by generated input instead of
// curated corpora. Run continuously with:
//
//	go test -run '^$' -fuzz FuzzSpellConsume ./internal/spell/

import (
	"strings"
	"testing"

	"intellog/internal/nlp"
	"intellog/internal/spell"
)

func FuzzSpellConsume(f *testing.F) {
	f.Add([]byte("Registering worker node_01\nRegistered worker node_01\nbufstart=11 bufend=22"))
	f.Add([]byte("Starting task 1 in stage 4\nStarting task 2 in stage 4\nFinished task 1 in stage 4"))
	f.Add([]byte("lost block mgr_1\nlost block mgr_2\nlost worker mgr_2\n* * *\nlost"))
	f.Add([]byte("a\nab\nabc d\nabc e f\nabc e g"))
	f.Fuzz(func(t *testing.T, data []byte) {
		lines := strings.Split(string(data), "\n")
		if len(lines) > 200 {
			lines = lines[:200]
		}
		indexed := spell.NewParser(0)
		naive := spell.NewNaiveParser(0)
		var trained [][]string
		for _, line := range lines {
			tokens := nlp.Texts(nlp.Tokenize(line))
			if len(tokens) == 0 {
				continue
			}
			if len(tokens) > 48 {
				tokens = tokens[:48]
			}
			ki := indexed.Consume(append([]string(nil), tokens...))
			kn := naive.Consume(append([]string(nil), tokens...))
			switch {
			case ki == nil && kn == nil:
			case ki == nil || kn == nil:
				t.Fatalf("consume %q: indexed=%v naive=%v", tokens, ki, kn)
			case ki.ID != kn.ID:
				t.Fatalf("consume %q: key ID %d (%q) vs %d (%q)", tokens, ki.ID, ki, kn.ID, kn)
			}
			trained = append(trained, tokens)
		}

		ik, nk := indexed.Keys(), naive.Keys()
		if len(ik) != len(nk) {
			t.Fatalf("key counts diverge: indexed=%d naive=%d", len(ik), len(nk))
		}
		for i := range ik {
			if ik[i].ID != nk[i].ID || ik[i].String() != nk[i].String() || ik[i].Count != nk[i].Count {
				t.Fatalf("key %d diverged: indexed %d %q (count %d) vs naive %d %q (count %d)",
					i, ik[i].ID, ik[i], ik[i].Count, nk[i].ID, nk[i], nk[i].Count)
			}
		}

		for _, tokens := range trained {
			li, ln := indexed.Lookup(tokens), naive.Lookup(tokens)
			if (li == nil) != (ln == nil) || (li != nil && li.ID != ln.ID) {
				t.Fatalf("lookup %q: indexed=%v naive=%v", tokens, li, ln)
			}
		}
	})
}
