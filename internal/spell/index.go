package spell

// Inverted indexing of keys by their constant (non-wildcard) tokens. Two
// structures replace the linear byLen scans of the seed matcher:
//
//   - lens buckets every key by length, then by (first-constant position,
//     token text). A positional lookup probes one bucket per candidate
//     anchor position — a key of length L whose first constant sits at
//     position p can only match messages whose token at p equals that
//     constant, because all key positions before p are wildcards. Each
//     key lives in exactly one bucket, and maxAnchor caps how deep the
//     probing goes (log keys anchor within the first few tokens), so a
//     lookup costs one int-map probe plus a handful of string-map probes
//     instead of a bucket scan. Probing on token text keeps Lookup free
//     of interning work and of any allocation.
//   - postings maps a constant token ID to the keys containing it. Any
//     admissible LCS merge keeps at least one constant token (Consume
//     rejects all-wildcard merges), and a merged constant is by
//     construction a token the key and the message share, so the union of
//     the postings of the message's tokens is a complete candidate set.
//
// Keys whose tokens are all wildcards (possible only when a raw message
// consists of literal "*" fields) can never anchor or merge; they are
// kept in wild per length and positionally match any same-length message.
//
// Every bucket and postings list is kept in ascending key.seq order —
// the order the seed matcher would have scanned them — so candidate
// iteration (and therefore tie-breaking) is byte-identical to the seed.

// lenBuckets indexes the keys of one token count.
type lenBuckets struct {
	// maxAnchor is max(first-constant position)+1 over this length's
	// keys; it only grows, a sound upper bound after removals.
	maxAnchor int
	// byPos[pos][tok] lists the keys whose first constant is tok at pos.
	byPos []map[string][]*Key
	// wild holds all-wildcard keys in ascending seq order.
	wild []*Key
}

// firstConstPos returns the first non-wildcard position of ids, or -1.
func firstConstPos(ids []int32) int {
	for i, id := range ids {
		if id != wildcardID {
			return i
		}
	}
	return -1
}

// containsBefore reports whether id occurs in ids[:i]; used to add each
// distinct constant to postings once per key.
func containsBefore(ids []int32, i int, id int32) bool {
	for _, x := range ids[:i] {
		if x == id {
			return true
		}
	}
	return false
}

// addToIndex registers k (with k.ids already interned) in the anchor and
// postings structures.
func (p *Parser) addToIndex(k *Key) {
	n := len(k.Tokens)
	lb := p.lens[n]
	if lb == nil {
		lb = &lenBuckets{}
		p.lens[n] = lb
	}
	if pos := firstConstPos(k.ids); pos >= 0 {
		for len(lb.byPos) <= pos {
			lb.byPos = append(lb.byPos, nil)
		}
		m := lb.byPos[pos]
		if m == nil {
			m = make(map[string][]*Key)
			lb.byPos[pos] = m
		}
		tok := k.Tokens[pos]
		m[tok] = append(m[tok], k)
		if pos+1 > lb.maxAnchor {
			lb.maxAnchor = pos + 1
		}
	} else {
		lb.wild = append(lb.wild, k)
	}
	for i, id := range k.ids {
		if id == wildcardID || containsBefore(k.ids, i, id) {
			continue
		}
		p.postings[id] = append(p.postings[id], k)
	}
}

// removeFromIndex unregisters k using its current k.ids/k.Tokens. Must
// run before a merge rewrites the key's tokens.
func (p *Parser) removeFromIndex(k *Key) {
	lb := p.lens[len(k.Tokens)]
	if pos := firstConstPos(k.ids); pos >= 0 {
		m := lb.byPos[pos]
		tok := k.Tokens[pos]
		if s := removeKey(m[tok], k); len(s) == 0 {
			delete(m, tok)
		} else {
			m[tok] = s
		}
	} else {
		lb.wild = removeKey(lb.wild, k)
	}
	for i, id := range k.ids {
		if id == wildcardID || containsBefore(k.ids, i, id) {
			continue
		}
		if s := removeKey(p.postings[id], k); len(s) == 0 {
			delete(p.postings, id)
		} else {
			p.postings[id] = s
		}
	}
}

// removeKey deletes k from s preserving order.
func removeKey(s []*Key, k *Key) []*Key {
	for i, kk := range s {
		if kk == k {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// matchPositional returns the positionally matching key with the smallest
// bucket sequence — exactly the key the seed matcher's in-order byLen scan
// would have returned first — or nil. Read-only and allocation-free; safe
// for concurrent callers.
func (p *Parser) matchPositional(tokens []string) *Key {
	lb := p.lens[len(tokens)]
	if lb == nil {
		return nil
	}
	var best *Key
	for pos := 0; pos < lb.maxAnchor; pos++ {
		m := lb.byPos[pos]
		if m == nil {
			continue
		}
		for _, k := range m[tokens[pos]] {
			if (best == nil || k.seq < best.seq) && positionalMatch(k.Tokens, tokens) {
				best = k
			}
		}
	}
	// An all-wildcard key matches any same-length message; the bucket is
	// in ascending seq order so only its head can win.
	if len(lb.wild) > 0 {
		if k := lb.wild[0]; best == nil || k.seq < best.seq {
			best = k
		}
	}
	return best
}
