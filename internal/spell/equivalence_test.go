package spell_test

// Equivalence suite: the indexed matcher must produce byte-identical
// output to the seed linear-scan matcher — same keys, same IDs, same
// wildcards, same counts, and the same per-message key assignment — on
// realistic simulated corpora and on adversarial random token streams.

import (
	"fmt"
	"math/rand"
	"testing"

	"intellog/internal/logging"
	"intellog/internal/nlp"
	"intellog/internal/sim"
	"intellog/internal/spell"
	"intellog/internal/workload"
)

// assertSameKeys fails unless both parsers hold identical key sets.
func assertSameKeys(t *testing.T, indexed, naive *spell.Parser) {
	t.Helper()
	ik, nk := indexed.Keys(), naive.Keys()
	if len(ik) != len(nk) {
		t.Fatalf("key counts diverge: indexed=%d naive=%d", len(ik), len(nk))
	}
	for i := range ik {
		a, b := ik[i], nk[i]
		if a.ID != b.ID {
			t.Fatalf("key %d: ID %d vs %d", i, a.ID, b.ID)
		}
		if a.String() != b.String() {
			t.Fatalf("key %d: tokens %q vs %q", i, a.String(), b.String())
		}
		if a.Count != b.Count {
			t.Fatalf("key %d (%q): count %d vs %d", i, a.String(), a.Count, b.Count)
		}
		if fmt.Sprint(a.Sample) != fmt.Sprint(b.Sample) {
			t.Fatalf("key %d: sample %v vs %v", i, a.Sample, b.Sample)
		}
	}
}

// consumeBoth feeds one tokenized message to both parsers and fails on
// any divergence in the returned key.
func consumeBoth(t *testing.T, indexed, naive *spell.Parser, tokens []string) {
	t.Helper()
	// The parsers may rewrite token slices; give each its own copy.
	ki := indexed.Consume(append([]string(nil), tokens...))
	kn := naive.Consume(append([]string(nil), tokens...))
	switch {
	case ki == nil && kn == nil:
	case ki == nil || kn == nil:
		t.Fatalf("consume %v: indexed=%v naive=%v", tokens, ki, kn)
	case ki.ID != kn.ID:
		t.Fatalf("consume %v: key ID %d (%q) vs %d (%q)", tokens, ki.ID, ki, kn.ID, kn)
	}
}

func TestEquivalenceSimulatedCorpora(t *testing.T) {
	for _, fw := range []logging.Framework{logging.Spark, logging.MapReduce, logging.Tez} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s-seed%d", fw, seed), func(t *testing.T) {
				cluster := sim.NewCluster(8, seed)
				gen := workload.NewGenerator(cluster, seed+100)
				sessions := gen.TrainingCorpus(fw, 3)

				indexed := spell.NewParser(0)
				naive := spell.NewNaiveParser(0)
				var lookups [][]string
				for _, s := range sessions {
					for i := range s.Records {
						tokens := nlp.Texts(nlp.Tokenize(s.Records[i].Message))
						consumeBoth(t, indexed, naive, tokens)
						if i%7 == 0 {
							lookups = append(lookups, tokens)
						}
					}
				}
				assertSameKeys(t, indexed, naive)

				// Lookup equivalence on a sample of trained messages plus
				// perturbed variants that may or may not match.
				rng := rand.New(rand.NewSource(seed))
				for _, tokens := range lookups {
					li, ln := indexed.Lookup(tokens), naive.Lookup(tokens)
					if (li == nil) != (ln == nil) || (li != nil && li.ID != ln.ID) {
						t.Fatalf("lookup %v: indexed=%v naive=%v", tokens, li, ln)
					}
					mut := append([]string(nil), tokens...)
					mut[rng.Intn(len(mut))] = fmt.Sprintf("novel_%d", rng.Int63())
					li, ln = indexed.Lookup(mut), naive.Lookup(mut)
					if (li == nil) != (ln == nil) || (li != nil && li.ID != ln.ID) {
						t.Fatalf("perturbed lookup %v: indexed=%v naive=%v", mut, li, ln)
					}
				}
			})
		}
	}
}

// TestEquivalenceRandomStreams stresses the matchers with adversarial
// random streams: a small token alphabet mixing constant words, variable
// identifiers and literal wildcards forces dense LCS merging, repeated
// reindexing and wildcard-only keys.
func TestEquivalenceRandomStreams(t *testing.T) {
	words := []string{"starting", "finished", "task", "shuffle", "block", "manager", "worker", "lost", "read", "bytes"}
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			indexed := spell.NewParser(0)
			naive := spell.NewNaiveParser(0)
			for n := 0; n < 600; n++ {
				l := 1 + rng.Intn(10)
				tokens := make([]string, l)
				for i := range tokens {
					switch rng.Intn(5) {
					case 0:
						tokens[i] = fmt.Sprintf("id_%d", rng.Intn(50))
					case 1:
						tokens[i] = fmt.Sprintf("%d", rng.Intn(100))
					case 2:
						tokens[i] = spell.Wildcard // literal "*" in a raw message
					default:
						tokens[i] = words[rng.Intn(len(words))]
					}
				}
				consumeBoth(t, indexed, naive, tokens)
			}
			assertSameKeys(t, indexed, naive)
		})
	}
}

// TestEquivalenceClassicMode covers the ablation path (no constant-word
// guard), which exercises merges the guarded matcher rejects.
func TestEquivalenceClassicMode(t *testing.T) {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	rng := rand.New(rand.NewSource(42))
	indexed := spell.NewClassicParser(0)
	naive := spell.NewNaiveClassicParser(0)
	for n := 0; n < 500; n++ {
		l := 1 + rng.Intn(8)
		tokens := make([]string, l)
		for i := range tokens {
			if rng.Intn(3) == 0 {
				tokens[i] = fmt.Sprintf("v%d", rng.Intn(30))
			} else {
				tokens[i] = words[rng.Intn(len(words))]
			}
		}
		consumeBoth(t, indexed, naive, tokens)
	}
	assertSameKeys(t, indexed, naive)
}

// TestEquivalenceRestore proves a restored indexed parser matches a
// restored naive parser on both Lookup and further Consume calls.
func TestEquivalenceRestore(t *testing.T) {
	cluster := sim.NewCluster(8, 7)
	gen := workload.NewGenerator(cluster, 11)
	sessions := gen.TrainingCorpus(logging.Spark, 2)

	trained := spell.NewParser(0)
	var msgs [][]string
	for _, s := range sessions {
		for i := range s.Records {
			tokens := nlp.Texts(nlp.Tokenize(s.Records[i].Message))
			msgs = append(msgs, tokens)
			trained.Consume(append([]string(nil), tokens...))
		}
	}

	// Clone the trained keys so each restored parser owns its copies.
	clone := func() []*spell.Key {
		out := make([]*spell.Key, 0, len(trained.Keys()))
		for _, k := range trained.Keys() {
			out = append(out, &spell.Key{
				ID:     k.ID,
				Tokens: append([]string(nil), k.Tokens...),
				Sample: append([]string(nil), k.Sample...),
				Count:  k.Count,
			})
		}
		return out
	}
	indexed := spell.Restore(0, clone())
	naive := spell.RestoreNaiveParser(0, clone())

	for _, m := range msgs {
		li, ln := indexed.Lookup(m), naive.Lookup(m)
		if (li == nil) != (ln == nil) || (li != nil && li.ID != ln.ID) {
			t.Fatalf("restored lookup %v: indexed=%v naive=%v", m, li, ln)
		}
	}
	for _, m := range msgs {
		consumeBoth(t, indexed, naive, m)
	}
	assertSameKeys(t, indexed, naive)
}
