// Package spell implements Spell (Du & Li, ICDM 2017), the streaming
// log-key extractor IntelLog uses as its first stage (§2.1, §5). Raw log
// messages stream in; Spell clusters them by longest-common-subsequence
// similarity and maintains one log key per cluster, with variable fields
// replaced by "*".
//
// Two refinements over a naive LCS matcher keep keys faithful for the
// analytics-log domain:
//
//   - a merge only wildcards tokens that look variable (contain digits,
//     '#', '_', '/', ':' …). Pure alphabetic words are part of the constant
//     text by construction of logging statements, so "Registering block
//     manager …" and "Registered block manager …" stay distinct keys;
//   - candidate keys are pre-filtered by length (within 2× of the message),
//     the simple-loop optimisation from the Spell paper.
//
// The threshold t (IntelLog sets t = 1.7 empirically) controls how much of
// a message must be covered by the LCS: a key matches when
// lcs·t ≥ max(len(key), len(msg)).
package spell

import "strings"

// Wildcard is the placeholder for a variable field in a log key.
const Wildcard = "*"

// Key is one extracted log key.
type Key struct {
	// ID is a dense index assigned in discovery order.
	ID int
	// Tokens is the key's token sequence; variable fields are Wildcard.
	Tokens []string
	// Sample is the token sequence of the first message that created this
	// key. IntelLog feeds the sample (not the key) to the POS tagger (§3).
	Sample []string
	// Count is the number of messages matched to this key.
	Count int
}

// String renders the key with wildcards, e.g. "fetcher#* about to shuffle
// output of map *".
func (k *Key) String() string { return strings.Join(k.Tokens, " ") }

// NumWildcards returns the number of variable fields in the key.
func (k *Key) NumWildcards() int {
	n := 0
	for _, t := range k.Tokens {
		if t == Wildcard {
			n++
		}
	}
	return n
}

// Parser is a streaming Spell instance. The zero value is not usable; use
// NewParser.
type Parser struct {
	t    float64
	keys []*Key
	// byLen indexes keys by token count for the simple-loop length filter.
	byLen map[int][]*Key
	// classicLCS disables the constant-word merge guard, reverting to the
	// original Spell rule (merge whenever the LCS clears the threshold,
	// wildcarding any divergent token). Exposed for the ablation that
	// motivates the guard.
	classicLCS bool
}

// NewClassicParser returns a Parser using the original Spell matching
// rule without the constant-word merge guard (ablation).
func NewClassicParser(t float64) *Parser {
	p := NewParser(t)
	p.classicLCS = true
	return p
}

// DefaultThreshold is the t value the paper found effective (§5).
const DefaultThreshold = 1.7

// NewParser returns a Parser with the given matching threshold t; values
// ≤ 1 fall back to DefaultThreshold.
func NewParser(t float64) *Parser {
	if t <= 1 {
		t = DefaultThreshold
	}
	return &Parser{t: t, byLen: make(map[int][]*Key)}
}

// Keys returns all keys discovered so far, in discovery order.
func (p *Parser) Keys() []*Key { return p.keys }

// Restore rebuilds a Parser around previously extracted keys (model
// loading). The threshold governs future Consume calls; Lookup works
// immediately.
func Restore(t float64, keys []*Key) *Parser {
	p := NewParser(t)
	for _, k := range keys {
		p.keys = append(p.keys, k)
		p.byLen[len(k.Tokens)] = append(p.byLen[len(k.Tokens)], k)
	}
	return p
}

// Consume processes one tokenized message and returns its key, creating or
// refining keys as needed.
func (p *Parser) Consume(tokens []string) *Key {
	if len(tokens) == 0 {
		return nil
	}
	// Fast path: positional match against same-length keys.
	for _, k := range p.byLen[len(tokens)] {
		if positionalMatch(k.Tokens, tokens) {
			k.Count++
			return k
		}
	}
	// LCS path: best mergeable key within the length window. A merge is
	// admissible when (a) only variable-looking tokens get wildcarded
	// (constant words in logging statements never vary), (b) the merged
	// key covers the originals: len(merged)·t ≥ max length, so a gap may
	// collapse at most (t−1)/t of a message, and (c) at least one constant
	// token anchors the key. Among admissible keys the one keeping the
	// most constant tokens wins.
	var best *Key
	var bestMerged []string
	bestConst := 0
	for l := len(tokens)/2 + len(tokens)%2; l <= len(tokens)*2; l++ {
		for _, k := range p.byLen[l] {
			merged, ok := tryMerge(k.Tokens, tokens)
			if !ok && !p.classicLCS {
				continue
			}
			maxLen := len(tokens)
			if len(k.Tokens) > maxLen {
				maxLen = len(k.Tokens)
			}
			if float64(len(merged))*p.t < float64(maxLen) {
				continue
			}
			c := len(merged) - countWildcards(merged)
			if c == 0 {
				continue
			}
			if c > bestConst {
				best, bestMerged, bestConst = k, merged, c
			}
		}
	}
	if best != nil {
		if len(bestMerged) != len(best.Tokens) {
			p.reindex(best, bestMerged)
		} else {
			best.Tokens = bestMerged
		}
		best.Count++
		return best
	}
	k := &Key{ID: len(p.keys), Tokens: append([]string(nil), tokens...), Sample: append([]string(nil), tokens...), Count: 1}
	p.keys = append(p.keys, k)
	p.byLen[len(tokens)] = append(p.byLen[len(tokens)], k)
	return k
}

// Lookup returns the key matching tokens without modifying parser state,
// or nil. Used in the detection phase where unmatched messages are
// anomalies rather than new keys.
func (p *Parser) Lookup(tokens []string) *Key {
	for _, k := range p.byLen[len(tokens)] {
		if positionalMatch(k.Tokens, tokens) {
			return k
		}
	}
	return nil
}

// reindex moves a key between length buckets after a merge changed its
// token count.
func (p *Parser) reindex(k *Key, merged []string) {
	old := p.byLen[len(k.Tokens)]
	for i, kk := range old {
		if kk == k {
			p.byLen[len(k.Tokens)] = append(old[:i], old[i+1:]...)
			break
		}
	}
	k.Tokens = merged
	p.byLen[len(merged)] = append(p.byLen[len(merged)], k)
}

// positionalMatch reports whether tokens aligns with key position by
// position, treating Wildcard as matching any single token.
func positionalMatch(key, tokens []string) bool {
	if len(key) != len(tokens) {
		return false
	}
	for i, kt := range key {
		if kt != Wildcard && kt != tokens[i] {
			return false
		}
	}
	return true
}

// lcsLen returns the length of the longest common subsequence of a and b,
// with Wildcard in a matching any token of b.
func lcsLen(a, b []string) int {
	// One-row DP.
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] || a[i-1] == Wildcard {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// variableLooking reports whether a token may be a variable field: it
// contains a digit, identifier punctuation, or is a path/URL. Constant
// text in logging statements is plain words, so only variable-looking
// tokens may be wildcarded by a merge.
func variableLooking(tok string) bool {
	if tok == Wildcard {
		return true
	}
	if strings.ContainsAny(tok, "0123456789_#/:@") {
		return true
	}
	return false
}

// countWildcards returns the number of Wildcard tokens in a key sequence.
func countWildcards(key []string) int {
	n := 0
	for _, t := range key {
		if t == Wildcard {
			n++
		}
	}
	return n
}

// tryMerge aligns key and tokens by LCS and produces the merged key:
// aligned tokens stay, divergent runs collapse to a single Wildcard. ok is
// false if any divergent token is not variable-looking.
func tryMerge(key, tokens []string) ([]string, bool) {
	n, m := len(key), len(tokens)
	dp := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int, m+1)
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			if key[i-1] == tokens[j-1] || key[i-1] == Wildcard {
				dp[i][j] = dp[i-1][j-1] + 1
			} else if dp[i-1][j] >= dp[i][j-1] {
				dp[i][j] = dp[i-1][j]
			} else {
				dp[i][j] = dp[i][j-1]
			}
		}
	}
	// Backtrack, building the merged sequence in reverse.
	var rev []string
	ok := true
	i, j := n, m
	pendingGap := false
	flushGap := func() {
		if pendingGap {
			if len(rev) == 0 || rev[len(rev)-1] != Wildcard {
				rev = append(rev, Wildcard)
			}
			pendingGap = false
		}
	}
	for i > 0 && j > 0 {
		if key[i-1] == tokens[j-1] || key[i-1] == Wildcard {
			flushGap()
			tok := key[i-1]
			if tok == Wildcard {
				// keep wildcard
			} else if len(rev) > 0 && rev[len(rev)-1] == Wildcard && tok == Wildcard {
				// collapse
			}
			rev = append(rev, tok)
			i--
			j--
			continue
		}
		if dp[i-1][j] >= dp[i][j-1] {
			if !variableLooking(key[i-1]) {
				ok = false
			}
			pendingGap = true
			i--
		} else {
			if !variableLooking(tokens[j-1]) {
				ok = false
			}
			pendingGap = true
			j--
		}
	}
	for i > 0 {
		if !variableLooking(key[i-1]) {
			ok = false
		}
		pendingGap = true
		i--
	}
	for j > 0 {
		if !variableLooking(tokens[j-1]) {
			ok = false
		}
		pendingGap = true
		j--
	}
	flushGap()
	// Reverse.
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev, ok
}
