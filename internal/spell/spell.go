// Package spell implements Spell (Du & Li, ICDM 2017), the streaming
// log-key extractor IntelLog uses as its first stage (§2.1, §5). Raw log
// messages stream in; Spell clusters them by longest-common-subsequence
// similarity and maintains one log key per cluster, with variable fields
// replaced by "*".
//
// Two refinements over a naive LCS matcher keep keys faithful for the
// analytics-log domain:
//
//   - a merge only wildcards tokens that look variable (contain digits,
//     '#', '_', '/', ':' …). Pure alphabetic words are part of the constant
//     text by construction of logging statements, so "Registering block
//     manager …" and "Registered block manager …" stay distinct keys;
//   - candidate keys are pre-filtered by length (within 2× of the message),
//     the simple-loop optimisation from the Spell paper.
//
// The threshold t (IntelLog sets t = 1.7 empirically) controls how much of
// a message must be covered by the LCS: a key matches when
// lcs·t ≥ max(len(key), len(msg)).
//
// Matching is indexed: tokens are interned to dense int32 IDs (intern.go)
// and keys are indexed by their constant tokens (index.go), so positional
// lookups probe a handful of anchor buckets instead of scanning a length
// bucket, and the LCS path only considers keys sharing at least one
// constant token with the message. DP scratch comes from sync.Pools, so
// steady-state matching allocates nothing. The output is byte-identical
// to the seed linear-scan matcher (reference.go), which is kept for
// equivalence tests and ablation benchmarks.
package spell

import (
	"sort"
	"strings"
	"sync"
)

// Wildcard is the placeholder for a variable field in a log key.
const Wildcard = "*"

// Key is one extracted log key.
type Key struct {
	// ID is a dense index assigned in discovery order.
	ID int
	// Tokens is the key's token sequence; variable fields are Wildcard.
	Tokens []string
	// Sample is the token sequence of the first message that created this
	// key. IntelLog feeds the sample (not the key) to the POS tagger (§3).
	Sample []string
	// Count is the number of messages matched to this key.
	Count int

	// ids is Tokens interned by the owning parser. Unexported fields are
	// skipped by encoding/json, so persisted models carry only the string
	// form; Restore re-interns.
	ids []int32
	// seq reproduces the seed matcher's byLen bucket order: assigned on
	// creation and on every length-changing merge (which re-appended the
	// key at the end of its new bucket).
	seq int
	// stamp/shared are Consume-scoped candidate bookkeeping: stamp dedupes
	// a key surfacing from several postings lists in one Consume, shared
	// counts message tokens the key contains (an upper bound on merged
	// constants, used to prune hopeless LCS candidates).
	stamp  int
	shared int
}

// String renders the key with wildcards, e.g. "fetcher#* about to shuffle
// output of map *".
func (k *Key) String() string { return strings.Join(k.Tokens, " ") }

// NumWildcards returns the number of variable fields in the key.
func (k *Key) NumWildcards() int {
	n := 0
	for _, t := range k.Tokens {
		if t == Wildcard {
			n++
		}
	}
	return n
}

// Parser is a streaming Spell instance. The zero value is not usable; use
// NewParser.
//
// Concurrency: Consume must be called from a single goroutine; once
// consumption is done, any number of goroutines may call Lookup
// concurrently (all index structures are then read-only).
type Parser struct {
	t    float64
	keys []*Key
	// byLen indexes keys by token count. The indexed matcher does not scan
	// it, but it is maintained so the reference matcher, Restore and
	// equivalence tests see the exact seed layout.
	byLen map[int][]*Key
	// classicLCS disables the constant-word merge guard, reverting to the
	// original Spell rule (merge whenever the LCS clears the threshold,
	// wildcarding any divergent token). Exposed for the ablation that
	// motivates the guard.
	classicLCS bool
	// naive routes Consume/Lookup through the seed linear-scan matcher
	// (reference.go); equivalence tests flip it to prove the indexed
	// matcher produces identical keys.
	naive bool

	in *interner
	// lens is the per-length anchor index (see index.go).
	lens map[int]*lenBuckets
	// postings maps constant token ID → keys containing it.
	postings map[int32][]*Key
	// seq is the bucket-order sequence counter (see Key.seq).
	seq int
	// epoch stamps candidate gathering per Consume call.
	epoch int

	// Consume-only scratch (training is single-threaded per parser).
	msgIDs  []int32
	cands   []*Key
	bestBuf []int32
}

// NewClassicParser returns a Parser using the original Spell matching
// rule without the constant-word merge guard (ablation).
func NewClassicParser(t float64) *Parser {
	p := NewParser(t)
	p.classicLCS = true
	return p
}

// newNaiveParser returns a Parser running the seed linear-scan matcher;
// equivalence tests and ablation benchmarks use it as the reference.
func newNaiveParser(t float64) *Parser {
	p := NewParser(t)
	p.naive = true
	return p
}

// DefaultThreshold is the t value the paper found effective (§5).
const DefaultThreshold = 1.7

// NewParser returns a Parser with the given matching threshold t; values
// ≤ 1 fall back to DefaultThreshold.
func NewParser(t float64) *Parser {
	if t <= 1 {
		t = DefaultThreshold
	}
	return &Parser{
		t:        t,
		byLen:    make(map[int][]*Key),
		in:       newInterner(),
		lens:     make(map[int]*lenBuckets),
		postings: make(map[int32][]*Key),
	}
}

// Keys returns all keys discovered so far, in discovery order.
func (p *Parser) Keys() []*Key { return p.keys }

// Restore rebuilds a Parser around previously extracted keys (model
// loading). The threshold governs future Consume calls; Lookup works
// immediately. The restored parser takes ownership of the keys — it
// re-interns their tokens — so the parser they came from must not be used
// afterwards.
func Restore(t float64, keys []*Key) *Parser {
	p := NewParser(t)
	for _, k := range keys {
		p.keys = append(p.keys, k)
		p.indexKey(k)
	}
	return p
}

// indexKey interns k's tokens, assigns its bucket sequence and registers
// it in byLen and the inverted index.
func (p *Parser) indexKey(k *Key) {
	ids := make([]int32, len(k.Tokens))
	for i, tok := range k.Tokens {
		ids[i] = p.in.intern(tok)
	}
	k.ids = ids
	k.seq = p.nextSeq()
	p.byLen[len(k.Tokens)] = append(p.byLen[len(k.Tokens)], k)
	p.addToIndex(k)
}

func (p *Parser) nextSeq() int {
	p.seq++
	return p.seq
}

// Consume processes one tokenized message and returns its key, creating or
// refining keys as needed.
func (p *Parser) Consume(tokens []string) *Key {
	if p.naive {
		return p.consumeNaive(tokens)
	}
	if len(tokens) == 0 {
		return nil
	}
	// Fast path: positional match against same-length keys, via the anchor
	// index instead of a byLen scan. Runs on token text, so repeats of an
	// established template never touch the interner.
	if k := p.matchPositional(tokens); k != nil {
		k.Count++
		return k
	}
	ids := p.msgIDs[:0]
	for _, tok := range tokens {
		ids = append(ids, p.in.intern(tok))
	}
	p.msgIDs = ids

	// LCS path: best mergeable key within the length window. A merge is
	// admissible when (a) only variable-looking tokens get wildcarded
	// (constant words in logging statements never vary), (b) the merged
	// key covers the originals: len(merged)·t ≥ max length, so a gap may
	// collapse at most (t−1)/t of a message, and (c) at least one constant
	// token anchors the key. Among admissible keys the one keeping the
	// most constant tokens wins; ties keep the key the seed matcher's
	// (length, bucket-order) scan would have reached first.
	if best, merged := p.bestMerge(ids); best != nil {
		p.applyMerge(best, merged)
		best.Count++
		return best
	}

	k := &Key{ID: len(p.keys), Tokens: append([]string(nil), tokens...), Sample: append([]string(nil), tokens...), Count: 1}
	p.keys = append(p.keys, k)
	p.indexKey(k)
	return k
}

// bestMerge gathers merge candidates from the postings of the message's
// tokens and returns the winning key with its merged token IDs (valid
// until the next Consume), or nil.
func (p *Parser) bestMerge(ids []int32) (*Key, []int32) {
	lo := len(ids)/2 + len(ids)%2
	hi := len(ids) * 2
	p.epoch++
	cands := p.cands[:0]
	for _, id := range ids {
		if id == wildcardID {
			continue // a literal "*" can never align as a constant
		}
		for _, k := range p.postings[id] {
			if l := len(k.ids); l < lo || l > hi {
				continue
			}
			if k.stamp != p.epoch {
				k.stamp = p.epoch
				k.shared = 0
				cands = append(cands, k)
			}
			k.shared++
		}
	}
	p.cands = cands
	sort.Sort(byLenSeq(cands))

	scratch := mergeScratchPool.Get().(*mergeScratch)
	var best *Key
	bestConst := 0
	bestMerged := p.bestBuf[:0]
	for _, k := range cands {
		// k.shared bounds the constants a merge with k can keep; once it
		// cannot beat the current best, the O(n·m) DP is pointless.
		if k.shared <= bestConst {
			continue
		}
		merged, ok := tryMergeIDs(k.ids, ids, p.in, scratch)
		if !ok && !p.classicLCS {
			continue
		}
		maxLen := len(ids)
		if len(k.ids) > maxLen {
			maxLen = len(k.ids)
		}
		if float64(len(merged))*p.t < float64(maxLen) {
			continue
		}
		c := 0
		for _, id := range merged {
			if id != wildcardID {
				c++
			}
		}
		if c == 0 || c <= bestConst {
			continue
		}
		best, bestConst = k, c
		bestMerged = append(bestMerged[:0], merged...)
	}
	mergeScratchPool.Put(scratch)
	p.bestBuf = bestMerged
	if best == nil {
		return nil, nil
	}
	return best, bestMerged
}

// applyMerge rewrites key k with the merged token IDs, keeping every
// index structure consistent and reproducing the seed matcher's bucket
// mechanics: a same-length merge rewrites tokens in place, a
// length-changing merge moves the key to the end of its new byLen bucket
// (fresh seq).
func (p *Parser) applyMerge(k *Key, merged []int32) {
	if idsEqual(k.ids, merged) {
		return // merge kept the key's tokens verbatim; only Count changes
	}
	p.removeFromIndex(k)
	oldLen := len(k.ids)
	k.ids = append(k.ids[:0], merged...)
	toks := make([]string, len(merged))
	for i, id := range merged {
		toks[i] = p.in.token(id)
	}
	k.Tokens = toks
	if len(merged) != oldLen {
		old := p.byLen[oldLen]
		for i, kk := range old {
			if kk == k {
				p.byLen[oldLen] = append(old[:i], old[i+1:]...)
				break
			}
		}
		p.byLen[len(merged)] = append(p.byLen[len(merged)], k)
		k.seq = p.nextSeq()
	}
	p.addToIndex(k)
}

func idsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, x := range a {
		if x != b[i] {
			return false
		}
	}
	return true
}

// byLenSeq orders candidates exactly as the seed matcher scanned them:
// ascending length window, then bucket insertion order.
type byLenSeq []*Key

func (s byLenSeq) Len() int      { return len(s) }
func (s byLenSeq) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s byLenSeq) Less(i, j int) bool {
	if len(s[i].ids) != len(s[j].ids) {
		return len(s[i].ids) < len(s[j].ids)
	}
	return s[i].seq < s[j].seq
}

// Lookup returns the key matching tokens without modifying parser state,
// or nil. Used in the detection phase where unmatched messages are
// anomalies rather than new keys. Safe for concurrent callers once
// consumption is done.
func (p *Parser) Lookup(tokens []string) *Key {
	if p.naive {
		return p.lookupNaive(tokens)
	}
	if len(tokens) == 0 {
		return nil
	}
	return p.matchPositional(tokens)
}

// mergeScratch bundles the DP table and backtrack buffers one Consume's
// LCS pass needs; pooled so steady-state consumption allocates nothing.
type mergeScratch struct {
	dp  []int32
	rev []int32
}

var mergeScratchPool = sync.Pool{New: func() any { return new(mergeScratch) }}

// tryMergeIDs is tryMerge over interned IDs: it aligns key and msg by LCS
// and produces the merged key — aligned tokens stay, divergent runs
// collapse to a single wildcard. ok is false if any divergent token is not
// variable-looking. The returned slice aliases scratch.
func tryMergeIDs(key, msg []int32, in *interner, s *mergeScratch) ([]int32, bool) {
	n, m := len(key), len(msg)
	w := m + 1
	need := (n + 1) * w
	if cap(s.dp) < need {
		s.dp = make([]int32, need)
	}
	dp := s.dp[:need]
	for j := 0; j <= m; j++ {
		dp[j] = 0
	}
	for i := 1; i <= n; i++ {
		row := dp[i*w : i*w+w]
		prev := dp[(i-1)*w : i*w]
		row[0] = 0
		ki := key[i-1]
		for j := 1; j <= m; j++ {
			if ki == msg[j-1] || ki == wildcardID {
				row[j] = prev[j-1] + 1
			} else if prev[j] >= row[j-1] {
				row[j] = prev[j]
			} else {
				row[j] = row[j-1]
			}
		}
	}
	// Backtrack, building the merged sequence in reverse.
	rev := s.rev[:0]
	ok := true
	i, j := n, m
	pendingGap := false
	flushGap := func() {
		if pendingGap {
			if len(rev) == 0 || rev[len(rev)-1] != wildcardID {
				rev = append(rev, wildcardID)
			}
			pendingGap = false
		}
	}
	for i > 0 && j > 0 {
		ki := key[i-1]
		if ki == msg[j-1] || ki == wildcardID {
			flushGap()
			rev = append(rev, ki)
			i--
			j--
			continue
		}
		if dp[(i-1)*w+j] >= dp[i*w+j-1] {
			if !in.variable(ki) {
				ok = false
			}
			pendingGap = true
			i--
		} else {
			if !in.variable(msg[j-1]) {
				ok = false
			}
			pendingGap = true
			j--
		}
	}
	for ; i > 0; i-- {
		if !in.variable(key[i-1]) {
			ok = false
		}
		pendingGap = true
	}
	for ; j > 0; j-- {
		if !in.variable(msg[j-1]) {
			ok = false
		}
		pendingGap = true
	}
	flushGap()
	// Reverse.
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	s.rev = rev
	return rev, ok
}

// positionalMatch reports whether tokens aligns with key position by
// position, treating Wildcard as matching any single token.
func positionalMatch(key, tokens []string) bool {
	if len(key) != len(tokens) {
		return false
	}
	for i, kt := range key {
		if kt != Wildcard && kt != tokens[i] {
			return false
		}
	}
	return true
}

// lcsRowPool recycles the two DP rows lcsLen needs.
var lcsRowPool = sync.Pool{New: func() any {
	b := make([]int, 0, 128)
	return &b
}}

// lcsLen returns the length of the longest common subsequence of a and b,
// with Wildcard in a matching any token of b.
func lcsLen(a, b []string) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	bufp := lcsRowPool.Get().(*[]int)
	need := 2 * (len(b) + 1)
	buf := *bufp
	if cap(buf) < need {
		buf = make([]int, need)
	}
	buf = buf[:need]
	for i := range buf {
		buf[i] = 0
	}
	prev, cur := buf[:len(b)+1], buf[len(b)+1:]
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] || a[i-1] == Wildcard {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	out := prev[len(b)]
	*bufp = buf
	lcsRowPool.Put(bufp)
	return out
}

// variableLooking reports whether a token may be a variable field: it
// contains a digit, identifier punctuation, or is a path/URL. Constant
// text in logging statements is plain words, so only variable-looking
// tokens may be wildcarded by a merge.
func variableLooking(tok string) bool {
	if tok == Wildcard {
		return true
	}
	if strings.ContainsAny(tok, "0123456789_#/:@") {
		return true
	}
	return false
}

// countWildcards returns the number of Wildcard tokens in a key sequence.
func countWildcards(key []string) int {
	n := 0
	for _, t := range key {
		if t == Wildcard {
			n++
		}
	}
	return n
}
