package spell_test

import (
	"fmt"
	"strings"

	"intellog/internal/spell"
)

// Streaming two renderings of the same logging statement merges them into
// one log key with the variable fields wildcarded — the Fig. 1 flow.
func ExampleParser_Consume() {
	p := spell.NewParser(1.7)
	p.Consume(strings.Fields("Got assigned task 1"))
	k := p.Consume(strings.Fields("Got assigned task 42"))
	fmt.Println(k)
	fmt.Println(k.Count, k.NumWildcards())
	// Output:
	// Got assigned task *
	// 2 1
}

// Lookup matches without mutating the key set — the detection-phase mode,
// where unmatched messages are anomalies rather than new keys.
func ExampleParser_Lookup() {
	p := spell.NewParser(0)
	p.Consume(strings.Fields("Got assigned task 1"))
	p.Consume(strings.Fields("Got assigned task 2"))
	fmt.Println(p.Lookup(strings.Fields("Got assigned task 99")) != nil)
	fmt.Println(p.Lookup(strings.Fields("something else entirely")) == nil)
	// Output:
	// true
	// true
}
