package group_test

import (
	"fmt"

	"intellog/internal/group"
)

// The paper's motivating example: block-related entities share the
// sub-phrase "block" and group together, while "security manager" shares
// only the general-meaning suffix "manager" with "block manager" and is
// kept apart (Algorithm 1's last-words rule).
func ExampleBuild() {
	g := group.Build([]string{
		"block", "block manager", "block manager endpoint", "security manager",
	})
	for _, gr := range g.List {
		fmt.Println(gr.Name, "->", gr.Entities)
	}
	// Output:
	// block -> [block block manager block manager endpoint]
	// security manager -> [security manager]
}

func ExampleLongestCommonPhrase() {
	fmt.Println(group.LongestCommonPhrase("block manager", "block manager endpoint"))
	fmt.Println(group.LongestCommonPhrase("block manager", "security manager") == "")
	// Output:
	// block manager
	// true
}
