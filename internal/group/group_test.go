package group

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestLongestCommonPhrase(t *testing.T) {
	cases := []struct{ g, e, want string }{
		// One-word phrases are correlated with phrases containing them.
		{"block", "block manager", "block"},
		{"manager", "block manager", "manager"},
		{"task", "output", ""},
		// The paper's motivating example: shared suffix → not correlated.
		{"block manager", "security manager", ""},
		{"map output", "task output", ""},
		// Shared prefix → correlated.
		{"block manager", "block manager endpoint", "block manager"},
		// Containment trumps the last-words rule.
		{"temporary folder", "cleanup temporary folder", "temporary folder"},
		// Disjoint.
		{"block manager", "task attempt", ""},
		{"", "block", ""},
	}
	for _, c := range cases {
		if got := LongestCommonPhrase(c.g, c.e); got != c.want {
			t.Errorf("LongestCommonPhrase(%q, %q) = %q, want %q", c.g, c.e, got, c.want)
		}
	}
}

func TestBuildSparkLikeEntities(t *testing.T) {
	entities := []string{
		"block", "block manager", "block manager endpoint",
		"security manager", "task", "task attempt",
		"memory", "memory store", "shuffle memory",
		"driver",
	}
	g := Build(entities)

	blockGroup := findGroupContaining(g, "block manager endpoint")
	if blockGroup == nil {
		t.Fatal("no group contains 'block manager endpoint'")
	}
	if blockGroup.Name != "block" {
		t.Errorf("block group name = %q, want 'block' (shrunk to core)", blockGroup.Name)
	}
	if !contains(blockGroup.Entities, "block") || !contains(blockGroup.Entities, "block manager") {
		t.Errorf("block group = %v", blockGroup.Entities)
	}
	if contains(blockGroup.Entities, "security manager") {
		t.Errorf("'security manager' grouped with block: %v", blockGroup.Entities)
	}

	taskGroup := findGroupContaining(g, "task attempt")
	if taskGroup == nil || !contains(taskGroup.Entities, "task") {
		t.Fatalf("task group wrong: %+v", taskGroup)
	}

	memGroup := findGroupContaining(g, "memory store")
	if memGroup == nil || !contains(memGroup.Entities, "memory") {
		t.Fatalf("memory group wrong: %+v", memGroup)
	}
	if !contains(memGroup.Entities, "shuffle memory") {
		t.Errorf("'shuffle memory' should join memory group (contains 'memory'): %v", memGroup.Entities)
	}

	if findGroupContaining(g, "driver") == nil {
		t.Error("singleton 'driver' lost")
	}
}

func TestBuildReverseIndex(t *testing.T) {
	g := Build([]string{"block", "block manager", "driver"})
	if got := g.GroupsOf("block manager"); len(got) != 1 || got[0] != "block" {
		t.Errorf("GroupsOf(block manager) = %v", got)
	}
	if got := g.GroupsOf("driver"); len(got) != 1 || got[0] != "driver" {
		t.Errorf("GroupsOf(driver) = %v", got)
	}
	if got := g.GroupsOf("nonexistent"); got != nil {
		t.Errorf("GroupsOf(nonexistent) = %v", got)
	}
}

func TestBuildDeduplicates(t *testing.T) {
	g := Build([]string{"task", "task", "task attempt", ""})
	gr := findGroupContaining(g, "task")
	if gr == nil {
		t.Fatal("no task group")
	}
	count := 0
	for _, e := range gr.Entities {
		if e == "task" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("'task' appears %d times", count)
	}
}

func TestFindAndNames(t *testing.T) {
	g := Build([]string{"block", "driver"})
	if g.Find("block") == nil || g.Find("bogus") != nil {
		t.Error("Find wrong")
	}
	names := g.Names()
	sort.Strings(names)
	if !reflect.DeepEqual(names, []string{"block", "driver"}) {
		t.Errorf("Names = %v", names)
	}
}

// Property: every input entity lands in at least one group, and every
// group's name is a sub-phrase of (or equals) each member's words set
// relation is too strong after shrinking — instead check the name is
// non-empty and each member contains at least one of the name's words or
// founded the group.
func TestPropertyAllEntitiesGrouped(t *testing.T) {
	words := []string{"block", "manager", "task", "memory", "store", "output"}
	f := func(picks []uint8) bool {
		var entities []string
		for i := 0; i+1 < len(picks) && i < 10; i += 2 {
			a := words[int(picks[i])%len(words)]
			b := words[int(picks[i+1])%len(words)]
			if a == b {
				entities = append(entities, a)
			} else {
				entities = append(entities, a+" "+b)
			}
		}
		g := Build(entities)
		for _, e := range entities {
			if e != "" && len(g.GroupsOf(e)) == 0 {
				return false
			}
		}
		for _, gr := range g.List {
			if gr.Name == "" || len(gr.Entities) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: LongestCommonPhrase is symmetric in emptiness — if it returns
// "" one way for two multi-word phrases, the reverse is "" too.
func TestPropertyLCPSymmetricEmptiness(t *testing.T) {
	phrases := []string{"block manager", "security manager", "block manager endpoint", "map output", "task output", "shuffle memory"}
	for _, a := range phrases {
		for _, b := range phrases {
			x, y := LongestCommonPhrase(a, b), LongestCommonPhrase(b, a)
			if (x == "") != (y == "") {
				t.Errorf("LCP(%q,%q)=%q but LCP(%q,%q)=%q", a, b, x, b, a, y)
			}
		}
	}
}

func findGroupContaining(g *Groups, entity string) *Group {
	for _, gr := range g.List {
		if contains(gr.Entities, entity) {
			return gr
		}
	}
	return nil
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
