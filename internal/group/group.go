// Package group implements Algorithm 1 of the paper: nomenclature-based
// entity grouping. Correlated entities usually share a common sub-phrase
// in their names ("block", "block manager", "block manager endpoint");
// entities that share only their last few words ("block manager" vs
// "security manager") have general-meaning suffixes and are not grouped.
package group

import (
	"sort"
	"strings"
)

// Group is one entity group: a name (the shared sub-phrase, which shrinks
// toward the common core as members join) and its member entities.
type Group struct {
	Name     string
	Entities []string
}

// Groups is the result of Build: the ordered group list plus the reverse
// index from entity to group names (the D_r of Algorithm 1).
type Groups struct {
	List     []*Group
	ByEntity map[string][]string
}

// Names returns the group names in creation order.
func (g *Groups) Names() []string {
	out := make([]string, len(g.List))
	for i, gr := range g.List {
		out[i] = gr.Name
	}
	return out
}

// Find returns the group with the given name, or nil.
func (g *Groups) Find(name string) *Group {
	for _, gr := range g.List {
		if gr.Name == name {
			return gr
		}
	}
	return nil
}

// GroupsOf returns the group names an entity belongs to.
func (g *Groups) GroupsOf(entity string) []string { return g.ByEntity[entity] }

// Options tunes Algorithm 1 for ablation studies.
type Options struct {
	// DisableLastWordsRule turns off the shared-suffix rejection, grouping
	// any entities with a common sub-phrase ("block manager" with
	// "security manager").
	DisableLastWordsRule bool
}

// Build runs Algorithm 1 over the extracted entities. Entities are
// processed in ascending word-count order (the algorithm's input
// contract); each entity joins every group it shares an admissible common
// phrase with, or founds a new group.
func Build(entities []string) *Groups { return BuildWithOptions(entities, Options{}) }

// BuildWithOptions is Build with ablation switches.
func BuildWithOptions(entities []string, opts Options) *Groups {
	uniq := dedup(entities)
	sort.SliceStable(uniq, func(i, j int) bool {
		wi, wj := len(strings.Fields(uniq[i])), len(strings.Fields(uniq[j]))
		if wi != wj {
			return wi < wj
		}
		return uniq[i] < uniq[j]
	})

	g := &Groups{ByEntity: map[string][]string{}}
	for _, e := range uniq {
		grouped := false
		for _, gr := range g.List {
			com := longestCommonPhrase(gr.Name, e, opts)
			if com == "" {
				continue
			}
			gr.Entities = append(gr.Entities, e)
			gr.Name = com
			grouped = true
		}
		if !grouped {
			g.List = append(g.List, &Group{Name: e, Entities: []string{e}})
		}
	}
	// Merge groups whose names collapsed to the same phrase.
	g.List = mergeSameName(g.List)
	// Reverse index.
	for _, gr := range g.List {
		sort.Strings(gr.Entities)
		gr.Entities = dedup(gr.Entities)
		for _, e := range gr.Entities {
			g.ByEntity[e] = append(g.ByEntity[e], gr.Name)
		}
	}
	return g
}

// mergeSameName merges groups that converged to identical names,
// preserving first-appearance order.
func mergeSameName(list []*Group) []*Group {
	index := map[string]*Group{}
	var out []*Group
	for _, gr := range list {
		if have, ok := index[gr.Name]; ok {
			have.Entities = append(have.Entities, gr.Entities...)
			continue
		}
		index[gr.Name] = gr
		out = append(out, gr)
	}
	return out
}

// LongestCommonPhrase implements the helper of Algorithm 1 at word
// granularity. It returns the longest common contiguous word sub-phrase
// of g and e, or "" when the phrases are not correlated:
//
//   - if either phrase has one word, the common phrase is that word when
//     it occurs in the other phrase (one-word phrases are part of the
//     multi-word phrase, hence correlated);
//   - if two multi-word phrases share only their last few words
//     ("block manager" / "security manager" share "manager"), the shared
//     suffix has a general meaning and the phrases are not correlated —
//     unless one phrase wholly contains the other.
func LongestCommonPhrase(g, e string) string {
	return longestCommonPhrase(g, e, Options{})
}

func longestCommonPhrase(g, e string, opts Options) string {
	gw, ew := strings.Fields(g), strings.Fields(e)
	if len(gw) == 0 || len(ew) == 0 {
		return ""
	}
	com := longestCommonRun(gw, ew)
	if len(com) == 0 {
		return ""
	}
	if len(gw) == 1 || len(ew) == 1 {
		return strings.Join(com, " ")
	}
	// Containment trumps the last-words rule: "temporary folder" within
	// "cleanup temporary folder" is a genuine correlation.
	if len(com) == len(gw) || len(com) == len(ew) {
		return strings.Join(com, " ")
	}
	// The last word of a compound is its general-meaning head ("manager",
	// "file", "output"): a common run that is the suffix of either phrase
	// signals head-sharing, not correlation ("security manager" vs "block
	// manager endpoint" share only "manager").
	if !opts.DisableLastWordsRule && (isSuffix(com, gw) || isSuffix(com, ew)) {
		return ""
	}
	return strings.Join(com, " ")
}

// longestCommonRun returns the longest common contiguous word run of a
// and b (leftmost in a on ties).
func longestCommonRun(a, b []string) []string {
	best := 0
	bestEnd := 0
	// dp[j] = length of common run ending at a[i-1], b[j-1].
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
					bestEnd = i
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	if best == 0 {
		return nil
	}
	return a[bestEnd-best : bestEnd]
}

// isSuffix reports whether run is a suffix of words.
func isSuffix(run, words []string) bool {
	if len(run) > len(words) {
		return false
	}
	off := len(words) - len(run)
	for i, w := range run {
		if words[off+i] != w {
			return false
		}
	}
	return true
}

func dedup(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if s == "" || seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	return out
}
