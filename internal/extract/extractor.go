package extract

import (
	"strings"

	"intellog/internal/nlp"
	"intellog/internal/spell"
)

// BuildIntelKey runs the full §3 pipeline on one log key: POS tagging via
// the sample message (Fig. 3), field classification (§3.1), entity
// extraction (Table 2 patterns + camel-case filter) and operation
// extraction (§3.2). The result is the Intel Key for that log key.
func BuildIntelKey(k *spell.Key) *IntelKey {
	// Tag the sample message, not the key: wildcards would mislead the
	// tagger. When a merge changed the key's length the sample no longer
	// aligns, so fall back to tagging the key itself.
	sample := k.Sample
	if len(sample) != len(k.Tokens) {
		sample = k.Tokens
	}
	tokens := make([]nlp.Token, len(sample))
	for i, w := range sample {
		tokens[i] = nlp.Token{Text: w}
	}
	nlp.Tag(tokens)

	ik := &IntelKey{
		ID:     k.ID,
		Tokens: append([]string(nil), k.Tokens...),
		Tags:   nlp.Tags(tokens),
	}

	// Field classification. Variable fields are classified through the
	// sample's concrete token; constant identifier-shaped or locality
	// tokens are classified too (a key like "fetcher#1 …" may keep a
	// constant identifier if only one value was ever observed).
	skip := map[int]bool{}
	for i := range tokens {
		variable := k.Tokens[i] == spell.Wildcard
		slot, ok := classifyField(tokens, i, variable)
		if !ok {
			continue
		}
		ik.Slots = append(ik.Slots, slot)
		skip[i] = true
	}

	// Entities from the constant text. Identifier words ("fetcher" in
	// "fetcher # 1") participate directly: the tokenizer splits the
	// '#'-form, so the word is ordinary constant text, matching the
	// paper's Fig. 1 coloring.
	phrases, srcOf := ExtractEntities(tokens, skip)
	ik.Entities = phrases

	// Operations from the dependency structure of the sample.
	parse := nlp.ParseDeps(tokens)
	ik.Operations = ExtractOperations(parse, srcOf)

	// NL criterion: at least one clause (a predicate), or prepositional
	// prose without a predicate ("Down to the last merge-pass …").
	ik.NaturalLanguage = len(parse.Roots) > 0 || hasProseShape(tokens, skip)
	return ik
}

// classifyField applies the four §3.1 heuristics to token i. ok is false
// when the token is plain constant text.
func classifyField(tokens []nlp.Token, i int, variable bool) (Slot, bool) {
	t := tokens[i]
	// Heuristic 1: verb POS tags are never identifiers or values; locality
	// patterns run first.
	if cls, ok := LocalityClass(t.Text); ok {
		return Slot{Pos: i, Kind: SlotLocality, Type: cls}, true
	}
	if nlp.IsVerb(t.Tag) {
		if variable {
			return Slot{Pos: i, Kind: SlotOther}, true
		}
		return Slot{}, false
	}
	// Heuristic 2: a numeric field followed by a unit is a value; attached
	// units ("4ms") count too.
	if num, unit, ok := numericValued(t.Text); ok {
		if unit != "" {
			return Slot{Pos: i, Kind: SlotValue, Type: unit}, true
		}
		if j := i + 1; j < len(tokens) && IsUnit(tokens[j].Text) {
			return Slot{Pos: i, Kind: SlotValue, Type: strings.ToLower(nlp.Lemma(tokens[j].Text, nlp.TagNNS))}, true
		}
		_ = num
		// Heuristic 4: numbers only — identifier if the previous word is a
		// noun, value otherwise.
		if prev, tag := prevWordTag(tokens, i); prev != "" && nlp.IsNoun(tag) {
			return Slot{Pos: i, Kind: SlotIdentifier, Type: IdentifierType(t.Text, prev)}, true
		}
		return Slot{Pos: i, Kind: SlotValue}, true
	}
	// Heuristic 3: mixed letters and numbers form identifiers.
	if identifierShaped(t.Text) {
		return Slot{Pos: i, Kind: SlotIdentifier, Type: IdentifierType(t.Text, prevWordOf(tokens, i))}, true
	}
	if variable {
		return Slot{Pos: i, Kind: SlotOther}, true
	}
	return Slot{}, false
}

// prevWordTag returns the previous non-punctuation token's text and tag.
func prevWordTag(tokens []nlp.Token, i int) (string, string) {
	for j := i - 1; j >= 0; j-- {
		if tokens[j].Tag == nlp.TagSYM {
			continue
		}
		return tokens[j].Text, tokens[j].Tag
	}
	return "", ""
}

// entityPhraseFromWord lower-cases and lemmatizes an identifier prefix
// into an entity phrase ("fetcher" → "fetcher", "MapTask" → "map task").
func entityPhraseFromWord(w string) string {
	if nlp.IsCamel(w) {
		parts := nlp.SplitCamel(w)
		parts[len(parts)-1] = nlp.Lemma(parts[len(parts)-1], nlp.TagNNS)
		return strings.Join(parts, " ")
	}
	return nlp.Lemma(strings.ToLower(w), nlp.TagNNS)
}

// hasProseShape reports whether the constant text reads as prose even
// without a predicate: it contains a preposition or determiner among
// ordinary words. Key-value dumps fail this test.
func hasProseShape(tokens []nlp.Token, skip map[int]bool) bool {
	words := 0
	hasFunc := false
	for i, t := range tokens {
		if skip[i] || t.Tag == nlp.TagSYM {
			continue
		}
		words++
		if t.Tag == nlp.TagIN || t.Tag == nlp.TagDT || t.Tag == nlp.TagTO {
			hasFunc = true
		}
	}
	return hasFunc && words >= 3
}

func containsString(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
