package extract

import (
	"strings"
	"unicode"

	"intellog/internal/nlp"
)

// units recognised by the value heuristic (§3.1: "we categorize a field as
// a value if it is followed by a unit, such as '12 MB' and '5 ms'").
var units = map[string]bool{
	"b": true, "kb": true, "mb": true, "gb": true, "tb": true, "pb": true,
	"kib": true, "mib": true, "gib": true,
	"byte": true, "bytes": true, "bit": true, "bits": true,
	"ms": true, "s": true, "sec": true, "secs": true, "us": true, "ns": true,
	"second": true, "seconds": true, "millisecond": true, "milliseconds": true,
	"minute": true, "minutes": true, "hour": true, "hours": true,
	"record": true, "records": true, "row": true, "rows": true,
	"segment": true, "segments": true, "core": true, "cores": true,
	"slot": true, "slots": true, "%": true, "percent": true,
}

// IsUnit reports whether tok is a measurement unit word.
func IsUnit(tok string) bool { return units[strings.ToLower(tok)] }

// LocalityClass classifies a token per the locality patterns of §3.1:
// host names, IP addresses and ports, local directory paths, and
// distributed-filesystem paths. It returns the class name and true, or
// "" and false.
func LocalityClass(tok string) (string, bool) {
	switch {
	case strings.Contains(tok, "://"):
		return "URI", true
	case strings.HasPrefix(tok, "/"):
		return "PATH", true
	case isAddr(tok):
		return "ADDR", true
	case isHostName(tok):
		return "HOST", true
	}
	return "", false
}

// isAddr reports whether tok is "host:port" or "ip:port" or a bare IPv4.
func isAddr(tok string) bool {
	if isIPv4(tok) {
		return true
	}
	i := strings.LastIndexByte(tok, ':')
	if i <= 0 || i == len(tok)-1 {
		return false
	}
	port := tok[i+1:]
	if !allDigits(port) {
		return false
	}
	host := tok[:i]
	return isIPv4(host) || isHostName(host)
}

// isHostName matches the simulator's and common clusters' node naming:
// letters followed by digits, possibly dotted ("host1", "node07",
// "worker3.cluster.local"). A single dictionary word is not a host.
func isHostName(tok string) bool {
	if tok == "" || !unicode.IsLetter(rune(tok[0])) {
		return false
	}
	hasDigitRune := false
	for _, r := range tok {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '-' && r != '.' {
			return false
		}
		if unicode.IsDigit(r) {
			hasDigitRune = true
		}
	}
	// Dotted names ("nn.example.com") or letter+digit names ("host1").
	return strings.Contains(tok, ".") && !allDigits(strings.ReplaceAll(tok, ".", "")) || hasDigitRune
}

func isIPv4(tok string) bool {
	parts := strings.Split(tok, ".")
	if len(parts) != 4 {
		return false
	}
	for _, p := range parts {
		if p == "" || len(p) > 3 || !allDigits(p) {
			return false
		}
	}
	return true
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}

// identifierShaped reports whether tok mixes letters with digits or
// identifier punctuation ('attempt_01', 'fetcher#1', 'broadcast_7') —
// heuristic 3 of §3.1.
func identifierShaped(tok string) bool {
	hasLetterRune := false
	hasDigitOrSep := false
	for _, r := range tok {
		switch {
		case unicode.IsLetter(r):
			hasLetterRune = true
		case unicode.IsDigit(r) || r == '_' || r == '#':
			hasDigitOrSep = true
		}
	}
	return hasLetterRune && hasDigitOrSep && !strings.Contains(tok, "://") && !strings.HasPrefix(tok, "/")
}

// numericValued reports whether tok is a pure number (possibly decimal,
// comma-grouped or percent) or a number with an attached unit ("4ms",
// "366.3MB").
func numericValued(tok string) (num string, unit string, ok bool) {
	i := 0
	digits := 0
	for i < len(tok) {
		c := tok[i]
		if c >= '0' && c <= '9' {
			digits++
			i++
			continue
		}
		if c == '.' || c == ',' || (i == 0 && (c == '-' || c == '+')) {
			i++
			continue
		}
		break
	}
	if digits == 0 {
		return "", "", false
	}
	num, unit = tok[:i], tok[i:]
	if unit == "" || IsUnit(unit) {
		return num, strings.ToLower(unit), true
	}
	return "", "", false
}

// IdentifierType derives the capitalized identifier type of §4.1
// ("'container_01' and 'container_02' have a type of 'CONTAINER'").
// prevWord is the word preceding the field, used for numeric identifiers
// ("task 4" → TASK). Returns "" when no type can be derived.
func IdentifierType(tok, prevWord string) string {
	// Alphabetic prefix before '_' or '#': container_01 → CONTAINER.
	for _, sep := range []byte{'_', '#'} {
		if i := strings.IndexByte(tok, sep); i > 0 {
			prefix := tok[:i]
			if isAlpha(prefix) {
				return normalizeType(prefix)
			}
		}
	}
	if identifierShaped(tok) {
		// Mixed letters/digits without separator: strip trailing digits
		// ("executor3" → EXECUTOR). If nothing alphabetic remains, fall
		// through to the previous word.
		trimmed := strings.TrimRight(tok, "0123456789.")
		if isAlpha(trimmed) && trimmed != "" {
			return normalizeType(trimmed)
		}
	}
	if prevWord != "" && isAlpha(prevWord) {
		return normalizeType(prevWord)
	}
	return ""
}

// normalizeType maps a word to its identifier type: camel-case names keep
// their last component's stem ("BlockManagerId" → ID is unhelpful, so the
// full phrase is collapsed), plain words upper-case their lemma.
func normalizeType(w string) string {
	if nlp.IsCamel(w) {
		return strings.ToUpper(strings.Join(nlp.SplitCamel(w), ""))
	}
	return strings.ToUpper(nlp.Lemma(w, nlp.TagNN))
}

func isAlpha(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsLetter(r) {
			return false
		}
	}
	return true
}
