package extract

import (
	"testing"
	"time"

	"intellog/internal/nlp"
	"intellog/internal/spell"
)

func benchKey(b *testing.B) *spell.Key {
	b.Helper()
	p := spell.NewParser(0)
	var k *spell.Key
	for _, m := range []string{
		"Finished task 1.0 in stage 1.0 (TID 4). 1109 bytes result sent to driver",
		"Finished task 3.0 in stage 1.0 (TID 7). 1401 bytes result sent to driver",
	} {
		k = p.Consume(nlp.Texts(nlp.Tokenize(m)))
	}
	return k
}

func BenchmarkBuildIntelKey(b *testing.B) {
	k := benchKey(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildIntelKey(k)
	}
}

func BenchmarkBind(b *testing.B) {
	ik := BuildIntelKey(benchKey(b))
	raw := "Finished task 9.0 in stage 2.0 (TID 55). 1200 bytes result sent to driver"
	toks := nlp.Tokenize(raw)
	ts := time.Date(2019, 3, 1, 12, 0, 0, 0, time.UTC)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Bind(ik, toks, ts, "c1", raw)
	}
}
