package extract_test

// Native fuzz target for the §3 extraction pipeline on arbitrary
// messages: Tokenize → ad-hoc Intel Key (the detector's
// unexpected-message path) → Bind. Whatever the fuzzer feeds it, the
// pipeline must not panic, must be deterministic (two extractions of the
// same message encode identically), and must keep the Message's basic
// invariants. Run continuously with:
//
//	go test -run '^$' -fuzz FuzzExtract ./internal/extract/

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"intellog/internal/extract"
	"intellog/internal/nlp"
	"intellog/internal/spell"
)

func FuzzExtract(f *testing.F) {
	f.Add("Registering block manager 10.0.0.1:3801 with 366 MB RAM")
	f.Add("Starting fetcher#3 for map_42 to host7:13562")
	f.Add("bufstart=11 bufend=22 kvstart=786428")
	f.Add("lost executor 7 on host3: container killed")
	f.Add("=== ***  %%% \x00\xff")
	f.Fuzz(func(t *testing.T, msg string) {
		if len(msg) > 4096 {
			msg = msg[:4096] // bound tagger/DP cost per iteration
		}
		at := time.Date(2019, 3, 2, 9, 0, 0, 0, time.UTC)
		extractOnce := func() ([]byte, *extract.Message) {
			tokens := nlp.Tokenize(msg)
			adhoc := &spell.Key{ID: -1, Tokens: nlp.Texts(tokens), Sample: nlp.Texts(tokens)}
			ik := extract.BuildIntelKey(adhoc)
			m := extract.Bind(ik, tokens, at, "fuzz-session", msg)
			raw, err := json.Marshal(m)
			if err != nil {
				t.Fatalf("marshal message for %q: %v", msg, err)
			}
			return raw, m
		}
		raw1, m1 := extractOnce()
		raw2, _ := extractOnce()
		if !bytes.Equal(raw1, raw2) {
			t.Fatalf("extraction of %q not deterministic:\n%s\n%s", msg, raw1, raw2)
		}
		if m1.KeyID != -1 {
			t.Fatalf("ad-hoc message KeyID = %d, want -1", m1.KeyID)
		}
		if m1.Session != "fuzz-session" || !m1.Time.Equal(at) {
			t.Fatalf("binding lost session/time: %+v", m1)
		}
		// IdentifierSet is memoized; repeated calls must agree with each
		// other and with the identifier map.
		ids1, ids2 := m1.IdentifierSet(), m1.IdentifierSet()
		if len(ids1) != len(ids2) {
			t.Fatalf("IdentifierSet unstable: %v vs %v", ids1, ids2)
		}
		n := 0
		for _, vals := range m1.Identifiers {
			n += len(vals)
		}
		if len(ids1) > n {
			t.Fatalf("IdentifierSet has %d entries, identifier map only %d: %v", len(ids1), n, ids1)
		}
	})
}
