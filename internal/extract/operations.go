package extract

import (
	"strings"

	"intellog/internal/nlp"
)

// ExtractOperations turns the dependency parse of a sample message into
// the {subj-entity, predicate, obj-entity} tuples of §3.2. srcOf maps
// token indices to extracted entity phrases so arguments resolve to entity
// names; identifier-shaped and locality arguments resolve through their
// type ("fetcher#1" → "fetcher").
func ExtractOperations(parse nlp.Parse, srcOf map[int]string) []Operation {
	var ops []Operation
	for _, root := range parse.Roots {
		pred := nlp.Lemma(parse.Tokens[root].Text, parse.Tokens[root].Tag)
		op := Operation{Predicate: pred}
		// Objects by preference: a direct object outranks an indirect
		// object, which outranks a nominal modifier.
		var dobj, iobj, nmod string
		for _, arc := range parse.ArcsFor(root) {
			arg := argumentEntity(parse.Tokens, arc.Dep, srcOf)
			switch arc.Rel {
			case nlp.RelNsubj, nlp.RelNsubjPass:
				if op.Subject == "" {
					op.Subject = arg
				}
			case nlp.RelDobj:
				if dobj == "" {
					dobj = arg
				}
			case nlp.RelIobj:
				if iobj == "" {
					iobj = arg
				}
			case nlp.RelNmod:
				if nmod == "" {
					nmod = arg
				}
			case nlp.RelXcomp:
				// Chained predicate: emit a second operation sharing the
				// subject.
				x := Operation{
					Subject:   op.Subject,
					Predicate: nlp.Lemma(parse.Tokens[arc.Dep].Text, parse.Tokens[arc.Dep].Tag),
				}
				ops = append(ops, x)
			}
		}
		switch {
		case dobj != "":
			op.Object = dobj
		case iobj != "":
			op.Object = iobj
		default:
			op.Object = nmod
		}
		ops = append(ops, op)
	}
	return ops
}

// argumentEntity maps an argument token to an entity-like name.
func argumentEntity(tokens []nlp.Token, idx int, srcOf map[int]string) string {
	if phrase, ok := srcOf[idx]; ok && phrase != "" {
		return phrase
	}
	text := tokens[idx].Text
	if cls, ok := LocalityClass(text); ok {
		return strings.ToLower(cls)
	}
	if t := IdentifierType(text, prevWordOf(tokens, idx)); t != "" {
		return strings.ToLower(t)
	}
	if tokens[idx].Tag == nlp.TagCD {
		return ""
	}
	if nlp.IsCamel(text) {
		return nlp.CamelPhrase(text)
	}
	return nlp.Lemma(text, tokens[idx].Tag)
}

// prevWordOf returns the alphabetic word immediately before idx, skipping
// punctuation, or "".
func prevWordOf(tokens []nlp.Token, idx int) string {
	for j := idx - 1; j >= 0; j-- {
		if tokens[j].Tag == nlp.TagSYM {
			continue
		}
		if isAlpha(tokens[j].Text) {
			return tokens[j].Text
		}
		return ""
	}
	return ""
}
