package extract_test

import (
	"fmt"

	"intellog/internal/extract"
	"intellog/internal/nlp"
	"intellog/internal/spell"
)

// The Fig. 4 flow: a Spark task-finish log key becomes an Intel Key with
// entities, typed identifiers, values and operations.
func ExampleBuildIntelKey() {
	p := spell.NewParser(0)
	var k *spell.Key
	for _, m := range []string{
		"Finished task 1.0 in stage 1.0 (TID 4). 1109 bytes result sent to driver",
		"Finished task 3.0 in stage 1.0 (TID 7). 1401 bytes result sent to driver",
	} {
		k = p.Consume(nlp.Texts(nlp.Tokenize(m)))
	}
	ik := extract.BuildIntelKey(k)
	fmt.Println("entities:", ik.Entities)
	fmt.Println("identifier types:", ik.IdentifierTypes())
	for _, op := range ik.Operations {
		fmt.Println("operation:", op)
	}
	// Output:
	// entities: [task stage tid result driver]
	// identifier types: [TASK STAGE TID]
	// operation: {, finish, task}
	// operation: {result, send, driver}
}
