// Package extract implements IntelLog's information-extraction stage (§3):
// it turns log keys into Intel Keys by classifying every field as entity,
// identifier, value or locality via POS analysis, and extracting the
// operations {subj-entity, predicate, obj-entity} via dependency structure.
// Incoming log messages that match an Intel Key become Intel Messages —
// key-value structured records ready for storage and querying.
package extract

import (
	"fmt"
	"strings"
)

// SlotKind classifies a variable or identifier-shaped field of a log key.
type SlotKind int

// Slot kinds, mirroring the four variable-field categories of §2.1
// (operations are not slots; they are relations over tokens).
const (
	SlotIdentifier SlotKind = iota
	SlotValue
	SlotLocality
	SlotOther
)

var slotKindNames = [...]string{"identifier", "value", "locality", "other"}

// String returns the lower-case kind name.
func (k SlotKind) String() string {
	if k < SlotIdentifier || k > SlotOther {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return slotKindNames[k]
}

// Slot is one classified field of an Intel Key.
type Slot struct {
	// Pos is the token index within the key.
	Pos int `json:"pos"`
	// Kind is the field category.
	Kind SlotKind `json:"kind"`
	// Type is the capitalized identifier type ("FETCHER", "ATTEMPT", "TID"),
	// the unit for values ("bytes", "ms"), or the locality class ("HOST",
	// "ADDR", "PATH", "URI").
	Type string `json:"type,omitempty"`
}

// Operation is the 3-tuple of §3.2 extracted from a clause's dependency
// structure. Subject or Object may be empty ("Finished task …" has no
// subject).
type Operation struct {
	Subject   string `json:"subject,omitempty"`
	Predicate string `json:"predicate"`
	Object    string `json:"object,omitempty"`
}

// String renders the operation as "{subject, predicate, object}".
func (o Operation) String() string {
	return "{" + o.Subject + ", " + o.Predicate + ", " + o.Object + "}"
}

// IntelKey is the enhanced representation of a log key (§3): the key's
// tokens and POS tags plus the extracted semantic fields.
type IntelKey struct {
	// ID is the underlying spell key's ID.
	ID int `json:"id"`
	// Tokens is the log key's token sequence ("*" marks variable fields).
	Tokens []string `json:"tokens"`
	// Tags holds the POS tags, aligned with Tokens, obtained by tagging a
	// sample message and mapping the tags back onto the key (Fig. 3).
	Tags []string `json:"tags"`
	// Entities are the lemmatized entity phrases extracted by the POS
	// patterns of Table 2 plus the camel-case filter.
	Entities []string `json:"entities"`
	// Slots classifies the key's identifier/value/locality fields.
	Slots []Slot `json:"slots"`
	// Operations are the extracted {subj, predicate, obj} tuples.
	Operations []Operation `json:"operations"`
	// NaturalLanguage reports whether the key contains at least one clause
	// (the paper's NL-log criterion in §2.2, used in Table 1).
	NaturalLanguage bool `json:"naturalLanguage"`
}

// String renders the key text.
func (k *IntelKey) String() string { return strings.Join(k.Tokens, " ") }

// IdentifierTypes returns the set of identifier types in the key, sorted
// by slot position. The set acts as the subroutine signature in §4.1.
func (k *IntelKey) IdentifierTypes() []string {
	var out []string
	seen := map[string]bool{}
	for _, s := range k.Slots {
		if s.Kind == SlotIdentifier && s.Type != "" && !seen[s.Type] {
			seen[s.Type] = true
			out = append(out, s.Type)
		}
	}
	return out
}

// HasEntity reports whether the key extracted the given entity phrase.
func (k *IntelKey) HasEntity(phrase string) bool {
	for _, e := range k.Entities {
		if e == phrase {
			return true
		}
	}
	return false
}
