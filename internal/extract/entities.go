package extract

import (
	"strings"

	"intellog/internal/nlp"
)

// entityPatterns are the Table 2 POS patterns. 'N' matches any of the four
// noun tags, 'J' an adjective, 'I' a preposition. Longer patterns are
// preferred, so order within a length class does not matter.
var entityPatterns = [][]byte{
	{'J', 'J', 'N'},
	{'J', 'N', 'N'},
	{'N', 'J', 'N'},
	{'N', 'N', 'N'},
	{'N', 'I', 'N'},
	{'J', 'N'},
	{'N', 'N'},
	{'N'},
}

// patternClass maps a POS tag to the pattern alphabet, or 0 if the tag
// cannot participate in an entity phrase.
func patternClass(tag string) byte {
	switch {
	case nlp.IsNoun(tag):
		return 'N'
	case tag == nlp.TagJJ:
		return 'J'
	case tag == nlp.TagIN:
		return 'I'
	}
	return 0
}

// isEnumConstant reports whether tokens[i] is an all-caps enum value
// ("INITED", "RUNNING", "TERM") rather than an entity word. All-caps
// labels that introduce an identifier ("TID 4") stay entity-eligible.
func isEnumConstant(tokens []nlp.Token, i int) bool {
	text := tokens[i].Text
	if len(text) < 2 || strings.ToUpper(text) != text || !isAlpha(text) {
		return false
	}
	for j := i + 1; j < len(tokens); j++ {
		t := tokens[j]
		if t.Tag == nlp.TagSYM && t.Text != "*" {
			continue
		}
		// A following number, wildcard or identifier marks a label.
		if t.Tag == nlp.TagCD || t.Text == "*" || identifierShaped(t.Text) {
			return false
		}
		break
	}
	return true
}

// entityToken is one candidate token for phrase matching after camel-case
// expansion.
type entityToken struct {
	word  string // lower-cased surface word (camel parts split)
	class byte   // pattern alphabet class
	src   int    // index of the originating key token
}

// ExtractEntities runs the POS-pattern matcher of §3.1 over a tagged key.
// skip marks token positions to exclude (variable fields and localities).
// Camel-case words are split into their component words first; extracted
// phrases are lemmatized to singular form. The returned phrases are in
// first-occurrence order, deduplicated; srcOf maps each key-token index to
// the phrase extracted from it ("" if none).
func ExtractEntities(tokens []nlp.Token, skip map[int]bool) (phrases []string, srcOf map[int]string) {
	// Build the candidate stream: constant word tokens only, camel words
	// expanded, units attached to numbers dropped.
	var stream []entityToken
	brk := func(i int) { stream = append(stream, entityToken{class: 0, src: i}) }
	for i, t := range tokens {
		if skip[i] || t.Tag == nlp.TagSYM || t.Text == "*" {
			// Skipped fields break phrase adjacency: "task 1.0 in stage"
			// must not yield the phrase "task in stage".
			brk(i)
			continue
		}
		if IsUnit(t.Text) && i > 0 && (tokens[i-1].Tag == nlp.TagCD || tokens[i-1].Text == "*" || skip[i-1]) {
			brk(i)
			continue // "2264 bytes": the unit is part of a value, not an entity
		}
		if isEnumConstant(tokens, i) {
			brk(i) // state names like INITED, RUNNING are enum values
			continue
		}
		if nlp.IsCamel(t.Text) {
			for _, part := range nlp.SplitCamel(t.Text) {
				stream = append(stream, entityToken{word: part, class: 'N', src: i})
			}
			continue
		}
		c := patternClass(t.Tag)
		if c == 0 {
			brk(i) // a non-entity tag breaks phrase adjacency
			continue
		}
		stream = append(stream, entityToken{word: strings.ToLower(t.Text), class: c, src: i})
	}

	seen := map[string]bool{}
	srcOf = map[int]string{}
	i := 0
	for i < len(stream) {
		if stream[i].class == 0 {
			i++
			continue
		}
		matched := false
		for _, pat := range entityPatterns {
			if i+len(pat) > len(stream) {
				continue
			}
			ok := true
			for j, cls := range pat {
				if stream[i+j].class != cls {
					ok = false
					break
				}
				// The noun-preposition-noun pattern is only reliable for
				// 'of' ("output of map"); other prepositions over-capture
				// ("tokens for job"), the over-matching §7 warns about.
				if cls == 'I' && stream[i+j].word != "of" {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// A phrase must end on a noun (all patterns do) and a one-word
			// match must be a noun, which pattern {'N'} guarantees.
			words := make([]string, len(pat))
			for j := range pat {
				w := stream[i+j].word
				if j == len(pat)-1 {
					w = nlp.Lemma(w, nlp.TagNNS) // lemmatize the head
				}
				words[j] = w
			}
			phrase := strings.Join(words, " ")
			if !seen[phrase] {
				seen[phrase] = true
				phrases = append(phrases, phrase)
			}
			for j := range pat {
				if _, have := srcOf[stream[i+j].src]; !have {
					srcOf[stream[i+j].src] = phrase
				}
			}
			i += len(pat)
			matched = true
			break
		}
		if !matched {
			i++
		}
	}
	return phrases, srcOf
}
