package extract

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"intellog/internal/nlp"
	"intellog/internal/spell"
)

// keyFrom builds a spell key by consuming the given messages.
func keyFrom(t *testing.T, msgs ...string) *spell.Key {
	t.Helper()
	p := spell.NewParser(0)
	var k *spell.Key
	for _, m := range msgs {
		k = p.Consume(nlp.Texts(nlp.Tokenize(m)))
	}
	if len(p.Keys()) != 1 {
		t.Fatalf("messages produced %d keys, want 1", len(p.Keys()))
	}
	return k
}

func TestFigure1ShuffleKey(t *testing.T) {
	k := keyFrom(t,
		"fetcher#1 about to shuffle output of map attempt_01",
		"fetcher#2 about to shuffle output of map attempt_02",
	)
	ik := BuildIntelKey(k)
	if !ik.HasEntity("fetcher") {
		t.Errorf("entities = %v, want fetcher present", ik.Entities)
	}
	if !ik.HasEntity("output of map") && !ik.HasEntity("output") {
		t.Errorf("entities = %v, want an output entity", ik.Entities)
	}
	types := ik.IdentifierTypes()
	wantTypes := map[string]bool{"FETCHER": true, "ATTEMPT": true}
	for _, typ := range types {
		if !wantTypes[typ] {
			t.Errorf("unexpected identifier type %q (all: %v)", typ, types)
		}
		delete(wantTypes, typ)
	}
	if len(wantTypes) != 0 {
		t.Errorf("missing identifier types %v (got %v)", wantTypes, types)
	}
	// Operation: {fetcher, shuffle, output...}.
	found := false
	for _, op := range ik.Operations {
		if op.Predicate == "shuffle" && op.Subject == "fetcher" {
			found = true
		}
	}
	if !found {
		t.Errorf("operations = %v, want {fetcher, shuffle, *}", ik.Operations)
	}
	if !ik.NaturalLanguage {
		t.Error("shuffle key should be natural language")
	}
}

func TestFigure1FreedKey(t *testing.T) {
	k := keyFrom(t,
		"host1:13562 freed by fetcher#1 in 4ms",
		"host2:13562 freed by fetcher#2 in 11ms",
	)
	ik := BuildIntelKey(k)
	// Locality: host:port.
	var locs []Slot
	var vals []Slot
	for _, s := range ik.Slots {
		switch s.Kind {
		case SlotLocality:
			locs = append(locs, s)
		case SlotValue:
			vals = append(vals, s)
		}
	}
	if len(locs) != 1 || locs[0].Type != "ADDR" {
		t.Errorf("locality slots = %v, want one ADDR", locs)
	}
	if len(vals) != 1 || vals[0].Type != "ms" {
		t.Errorf("value slots = %v, want one ms value", vals)
	}
	if !ik.HasEntity("fetcher") {
		t.Errorf("entities = %v, want fetcher", ik.Entities)
	}
	foundFree := false
	for _, op := range ik.Operations {
		if op.Predicate == "free" {
			foundFree = true
		}
	}
	if !foundFree {
		t.Errorf("operations = %v, want predicate free", ik.Operations)
	}
}

func TestFigure3StartingMapTask(t *testing.T) {
	k := keyFrom(t, "Starting MapTask metrics system")
	ik := BuildIntelKey(k)
	hasMapTask := false
	for _, e := range ik.Entities {
		if strings.HasPrefix(e, "map task") {
			hasMapTask = true
		}
	}
	if !hasMapTask {
		t.Errorf("entities = %v, want camel-split map task phrase", ik.Entities)
	}
	hasStart := false
	for _, op := range ik.Operations {
		if op.Predicate == "start" {
			hasStart = true
		}
	}
	if !hasStart {
		t.Errorf("operations = %v, want start", ik.Operations)
	}
}

func TestFigure4TaskFinish(t *testing.T) {
	k := keyFrom(t,
		"Finished task 1.0 in stage 1.0 (TID 4). 1109 bytes result sent to driver",
		"Finished task 3.0 in stage 1.0 (TID 7). 1401 bytes result sent to driver",
	)
	ik := BuildIntelKey(k)
	for _, want := range []string{"task", "stage", "result", "driver"} {
		if !ik.HasEntity(want) {
			t.Errorf("entities = %v, want %q", ik.Entities, want)
		}
	}
	// 'bytes' is a unit, not an entity.
	if ik.HasEntity("byte") || ik.HasEntity("bytes") {
		t.Errorf("entities = %v: unit extracted as entity", ik.Entities)
	}
	// Three identifiers (task, stage, TID), one value (bytes).
	ids, vals := 0, 0
	for _, s := range ik.Slots {
		switch s.Kind {
		case SlotIdentifier:
			ids++
		case SlotValue:
			vals++
		}
	}
	if ids != 3 {
		t.Errorf("identifier slots = %d, want 3 (%+v)", ids, ik.Slots)
	}
	if vals != 1 {
		t.Errorf("value slots = %d, want 1 (%+v)", vals, ik.Slots)
	}
	// Two operations: finish and send.
	preds := map[string]bool{}
	for _, op := range ik.Operations {
		preds[op.Predicate] = true
	}
	if !preds["finish"] || !preds["send"] {
		t.Errorf("operations = %v, want finish and send", ik.Operations)
	}
}

func TestKVDumpIsNotNaturalLanguage(t *testing.T) {
	k := keyFrom(t, "memoryLimit=334338464 mergeThreshold=220663392 ioSortFactor=10")
	ik := BuildIntelKey(k)
	if ik.NaturalLanguage {
		t.Errorf("key %q flagged natural language", ik)
	}
}

func TestProseWithoutPredicateIsNL(t *testing.T) {
	k := keyFrom(t, "Down to the last merge-pass, with 706 segments left of total size: 120 bytes")
	ik := BuildIntelKey(k)
	if !ik.NaturalLanguage {
		t.Error("prepositional prose should count as natural language")
	}
	// The paper: no predicate here, so no operation extracted.
	if len(ik.Operations) != 0 {
		t.Errorf("operations = %v, want none", ik.Operations)
	}
}

func TestLocalityClasses(t *testing.T) {
	cases := map[string]string{
		"host1:13562":           "ADDR",
		"10.0.0.4:8020":         "ADDR",
		"10.0.0.4":              "ADDR",
		"/tmp/blockmgr-8e2/11":  "PATH",
		"hdfs://nn:8020/user/x": "URI",
		"node07":                "HOST",
		"worker3.cluster.local": "HOST",
	}
	for in, want := range cases {
		got, ok := LocalityClass(in)
		if !ok || got != want {
			t.Errorf("LocalityClass(%q) = %q,%v, want %q", in, got, ok, want)
		}
	}
	for _, in := range []string{"task", "2264", "attempt_01", "output"} {
		if cls, ok := LocalityClass(in); ok {
			t.Errorf("LocalityClass(%q) = %q, want none", in, cls)
		}
	}
}

func TestIdentifierType(t *testing.T) {
	cases := [][3]string{
		{"attempt_01", "", "ATTEMPT"},
		{"fetcher#1", "", "FETCHER"},
		{"container_e01_0001", "", "CONTAINER"},
		{"broadcast_7", "", "BROADCAST"},
		{"4", "task", "TASK"},
		{"1.0", "stage", "STAGE"},
		{"4", "TID", "TID"},
		{"executor3", "", "EXECUTOR"},
	}
	for _, c := range cases {
		if got := IdentifierType(c[0], c[1]); got != c[2] {
			t.Errorf("IdentifierType(%q, %q) = %q, want %q", c[0], c[1], got, c[2])
		}
	}
}

func TestNumericValued(t *testing.T) {
	if num, unit, ok := numericValued("4ms"); !ok || num != "4" || unit != "ms" {
		t.Errorf("numericValued(4ms) = %q %q %v", num, unit, ok)
	}
	if num, unit, ok := numericValued("366.3"); !ok || num != "366.3" || unit != "" {
		t.Errorf("numericValued(366.3) = %q %q %v", num, unit, ok)
	}
	if _, _, ok := numericValued("attempt_01"); ok {
		t.Error("identifier classified as numeric")
	}
	if _, _, ok := numericValued("4xyz"); ok {
		t.Error("unknown unit suffix accepted")
	}
}

func TestBindProducesIntelMessage(t *testing.T) {
	k := keyFrom(t,
		"fetcher#1 read 2264 bytes from map-output for attempt_01",
		"fetcher#2 read 108 bytes from map-output for attempt_02",
	)
	ik := BuildIntelKey(k)
	ts := time.Date(2019, 3, 1, 12, 0, 0, 0, time.UTC)
	raw := "fetcher#3 read 999 bytes from map-output for attempt_09"
	toks := nlp.Tokenize(raw)
	if !Matches(ik, toks) {
		t.Fatalf("message does not match key %q", ik)
	}
	m := Bind(ik, toks, ts, "container_01", raw)
	// "fetcher#3" tokenizes as "fetcher # 3"; the identifier value is the
	// numeral, typed FETCHER by the preceding noun.
	if got := m.Identifiers["FETCHER"]; len(got) != 1 || got[0] != "3" {
		t.Errorf("FETCHER = %v", got)
	}
	if got := m.Identifiers["ATTEMPT"]; len(got) != 1 || got[0] != "attempt_09" {
		t.Errorf("ATTEMPT = %v", got)
	}
	if got := m.Values["byte"]; len(got) != 1 || got[0] != "999" {
		t.Errorf("byte values = %v (all %v)", got, m.Values)
	}
	set := m.IdentifierSet()
	if !reflect.DeepEqual(set, []string{"3", "attempt_09"}) {
		t.Errorf("IdentifierSet = %v", set)
	}
	if m.Session != "container_01" || !m.Time.Equal(ts) {
		t.Error("metadata not carried through")
	}
}

func TestMatchesRejects(t *testing.T) {
	k := keyFrom(t, "Got assigned task 1", "Got assigned task 2")
	ik := BuildIntelKey(k)
	if Matches(ik, nlp.Tokenize("Got assigned task")) {
		t.Error("shorter message matched")
	}
	if Matches(ik, nlp.Tokenize("Got revoked task 3")) {
		t.Error("divergent constant matched")
	}
	if !Matches(ik, nlp.Tokenize("Got assigned task 42")) {
		t.Error("valid message rejected")
	}
}

func TestSlotKindString(t *testing.T) {
	if SlotIdentifier.String() != "identifier" || SlotValue.String() != "value" ||
		SlotLocality.String() != "locality" || SlotOther.String() != "other" {
		t.Error("SlotKind names wrong")
	}
	if SlotKind(9).String() != "kind(9)" {
		t.Error("out-of-range SlotKind")
	}
}

func TestOperationString(t *testing.T) {
	op := Operation{Subject: "fetcher", Predicate: "shuffle", Object: "output"}
	if op.String() != "{fetcher, shuffle, output}" {
		t.Errorf("String = %q", op.String())
	}
}

func TestIsUnit(t *testing.T) {
	for _, u := range []string{"bytes", "MB", "ms", "seconds", "%"} {
		if !IsUnit(u) {
			t.Errorf("IsUnit(%q) = false", u)
		}
	}
	if IsUnit("fetcher") {
		t.Error("IsUnit(fetcher) = true")
	}
}
