package extract

import (
	"sort"
	"strings"
	"time"

	"intellog/internal/nlp"
	"intellog/internal/spell"
)

// Message is an Intel Message (§3.3): a log message matched to an Intel
// Key with every variable field bound. It is a key-value structure that
// serialises naturally to JSON and time-series stores.
type Message struct {
	// KeyID is the Intel Key this message matched.
	KeyID int `json:"keyId"`
	// Time is the log timestamp.
	Time time.Time `json:"time"`
	// Session is the YARN container (session) ID.
	Session string `json:"session,omitempty"`
	// Raw is the original message text.
	Raw string `json:"raw"`
	// Entities copies the key's entity phrases.
	Entities []string `json:"entities,omitempty"`
	// Identifiers maps identifier type → observed values, e.g.
	// {"FETCHER": ["fetcher#1"], "ATTEMPT": ["attempt_01"]}.
	Identifiers map[string][]string `json:"identifiers,omitempty"`
	// Values maps unit (or "" for unitless) → numeric literals.
	Values map[string][]string `json:"values,omitempty"`
	// Localities maps locality class → tokens, e.g. {"ADDR": ["host1:13562"]}.
	Localities map[string][]string `json:"localities,omitempty"`
	// Operations copies the key's operations.
	Operations []Operation `json:"operations,omitempty"`

	// idSet and typeSet cache IdentifierSet and IdentifierTypes. Copies
	// of a bound prototype share them, so the sorts run once per distinct
	// rendering instead of once per record. Callers must treat the
	// returned slices as read-only.
	idSet   []string
	typeSet []string
	// typeSig caches TypeSignature (and typeSigOK distinguishes a cached
	// "" from an uncomputed one). Shared by prototype copies like typeSet.
	typeSig   string
	typeSigOK bool
	// interned caches the identifier multiset in interned form (set by
	// the HW-graph layer's value interner); shared by prototype copies
	// like idSet.
	interned *InternedIDs
}

// InternedIDs is a message's identifier multiset in interned form: the
// distinct values' dense ids and strings in idSet order, their occurrence
// counts, and the multiset's total size. Owner identifies the interner
// that assigned the ids; consumers must ignore a cache whose owner is not
// theirs. All fields are read-only once set.
type InternedIDs struct {
	Owner  any
	IDs    []int32
	Vals   []string
	Counts []int32
	Total  int
}

// Interned returns the cached interned identifier set, or nil.
func (m *Message) Interned() *InternedIDs { return m.interned }

// SetInterned caches the interned identifier set. Call only while the
// message is still private to one goroutine (i.e. at prototype build
// time).
func (m *Message) SetInterned(v *InternedIDs) { m.interned = v }

// IdentifierSet returns the sorted set of all identifier values in the
// message — the log.Sv of Algorithm 2. The result is cached on the
// message and must not be mutated.
func (m *Message) IdentifierSet() []string {
	if m.idSet != nil {
		return m.idSet
	}
	out := []string{}
	for _, vals := range m.Identifiers {
		out = append(out, vals...)
	}
	sort.Strings(out)
	m.idSet = out
	return out
}

// IdentifierTypes returns the sorted distinct identifier types of the
// message. The result is cached on the message and must not be mutated.
func (m *Message) IdentifierTypes() []string {
	if m.typeSet != nil {
		return m.typeSet
	}
	out := make([]string, 0, len(m.Identifiers))
	for t := range m.Identifiers {
		out = append(out, t)
	}
	sort.Strings(out)
	m.typeSet = out
	return out
}

// TypeSignature returns the message's identifier types joined with "+"
// in sorted order — the subroutine-signature string of Algorithm 2. The
// result is cached on the message (prototype copies share it), so the
// join runs once per distinct rendering instead of once per instance.
func (m *Message) TypeSignature() string {
	if m.typeSigOK {
		return m.typeSig
	}
	m.typeSig = strings.Join(m.IdentifierTypes(), "+")
	m.typeSigOK = true
	return m.typeSig
}

// Bind matches a tokenized log message against an Intel Key and produces
// the Intel Message. Token counts must align positionally with the key
// (the spell.Parser guarantees this for looked-up keys).
func Bind(key *IntelKey, tokens []nlp.Token, ts time.Time, session, raw string) *Message {
	m := &Message{
		KeyID:      key.ID,
		Time:       ts,
		Session:    session,
		Raw:        raw,
		Entities:   key.Entities,
		Operations: key.Operations,
	}
	// The field maps allocate lazily: most keys carry slots of one or two
	// kinds, consumers only read the maps (a nil map reads as empty), and
	// omitempty keeps the JSON shape identical.
	for _, slot := range key.Slots {
		if slot.Pos >= len(tokens) {
			continue
		}
		tok := tokens[slot.Pos].Text
		switch slot.Kind {
		case SlotIdentifier:
			typ := slot.Type
			if typ == "" {
				typ = "ID"
			}
			if m.Identifiers == nil {
				m.Identifiers = map[string][]string{}
			}
			m.Identifiers[typ] = append(m.Identifiers[typ], tok)
		case SlotValue:
			num, unit, ok := numericValued(tok)
			if !ok {
				num, unit = tok, slot.Type
			}
			if unit == "" {
				unit = slot.Type
			}
			if m.Values == nil {
				m.Values = map[string][]string{}
			}
			m.Values[unit] = append(m.Values[unit], num)
		case SlotLocality:
			if m.Localities == nil {
				m.Localities = map[string][]string{}
			}
			m.Localities[slot.Type] = append(m.Localities[slot.Type], tok)
		}
	}
	return m
}

// BindRaw tokenizes raw message text and binds it to the key.
func BindRaw(key *IntelKey, ts time.Time, session, raw string) *Message {
	return Bind(key, nlp.Tokenize(raw), ts, session, raw)
}

// CachedLookup is the per-raw-message memo callers attach to a
// spell.LookupCache entry: the token split, and — when the message bound
// to a natural-language key — the bound prototype whose per-record copies
// Rebind produces. Everything it references is shared and read-only.
type CachedLookup struct {
	Tokens []nlp.Token
	Proto  *Message

	// Adhoc is the §3 extraction of an unmatched rendering (key == nil):
	// the ad-hoc Intel Key the detector's unexpected-message handler binds
	// per record. Anomaly streams repeat the same unexpected message, and
	// re-running entity/operation extraction per repeat dominated the
	// detection allocation profile — the extraction depends only on the
	// raw text, so it is built once per distinct rendering. AdhocGroup and
	// AdhocDetail carry the (equally text-determined) entity-group
	// attribution and summary line. All three are set before the memo is
	// published to the cache and read-only after.
	Adhoc       *IntelKey
	AdhocGroup  string
	AdhocDetail string
}

// Rebind returns a copy of a bound prototype with the per-record fields
// filled in. The maps and slices are shared with the prototype (binding
// output depends only on the raw text, and consumers never mutate them),
// so a repeat rendering costs one allocation instead of re-binding.
func Rebind(proto *Message, ts time.Time, session string) *Message {
	m := *proto
	m.Time = ts
	m.Session = session
	return &m
}

// Rebinder is Rebind with chunked allocation: rebound copies come out of
// block-allocated Message arrays instead of one heap object per record.
// Binding a corpus produces one copy per record, so the allocator call
// count drops by the chunk size. The zero value is ready to use; a
// Rebinder must not be shared across goroutines.
type Rebinder struct {
	buf []Message
}

// Rebind is extract.Rebind backed by the chunk buffer.
func (r *Rebinder) Rebind(proto *Message, ts time.Time, session string) *Message {
	if len(r.buf) == 0 {
		r.buf = make([]Message, 256)
	}
	m := &r.buf[0]
	r.buf = r.buf[1:]
	*m = *proto
	m.Time = ts
	m.Session = session
	return m
}

// Matches reports whether a tokenized message positionally matches the
// Intel Key's log key.
func Matches(key *IntelKey, tokens []nlp.Token) bool {
	if len(tokens) != len(key.Tokens) {
		return false
	}
	for i, kt := range key.Tokens {
		if kt != spell.Wildcard && kt != tokens[i].Text {
			return false
		}
	}
	return true
}
