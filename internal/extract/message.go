package extract

import (
	"sort"
	"time"

	"intellog/internal/nlp"
	"intellog/internal/spell"
)

// Message is an Intel Message (§3.3): a log message matched to an Intel
// Key with every variable field bound. It is a key-value structure that
// serialises naturally to JSON and time-series stores.
type Message struct {
	// KeyID is the Intel Key this message matched.
	KeyID int `json:"keyId"`
	// Time is the log timestamp.
	Time time.Time `json:"time"`
	// Session is the YARN container (session) ID.
	Session string `json:"session,omitempty"`
	// Raw is the original message text.
	Raw string `json:"raw"`
	// Entities copies the key's entity phrases.
	Entities []string `json:"entities,omitempty"`
	// Identifiers maps identifier type → observed values, e.g.
	// {"FETCHER": ["fetcher#1"], "ATTEMPT": ["attempt_01"]}.
	Identifiers map[string][]string `json:"identifiers,omitempty"`
	// Values maps unit (or "" for unitless) → numeric literals.
	Values map[string][]string `json:"values,omitempty"`
	// Localities maps locality class → tokens, e.g. {"ADDR": ["host1:13562"]}.
	Localities map[string][]string `json:"localities,omitempty"`
	// Operations copies the key's operations.
	Operations []Operation `json:"operations,omitempty"`
}

// IdentifierSet returns the sorted set of all identifier values in the
// message — the log.Sv of Algorithm 2.
func (m *Message) IdentifierSet() []string {
	var out []string
	for _, vals := range m.Identifiers {
		out = append(out, vals...)
	}
	sort.Strings(out)
	return out
}

// Bind matches a tokenized log message against an Intel Key and produces
// the Intel Message. Token counts must align positionally with the key
// (the spell.Parser guarantees this for looked-up keys).
func Bind(key *IntelKey, tokens []nlp.Token, ts time.Time, session, raw string) *Message {
	m := &Message{
		KeyID:       key.ID,
		Time:        ts,
		Session:     session,
		Raw:         raw,
		Entities:    key.Entities,
		Operations:  key.Operations,
		Identifiers: map[string][]string{},
		Values:      map[string][]string{},
		Localities:  map[string][]string{},
	}
	for _, slot := range key.Slots {
		if slot.Pos >= len(tokens) {
			continue
		}
		tok := tokens[slot.Pos].Text
		switch slot.Kind {
		case SlotIdentifier:
			typ := slot.Type
			if typ == "" {
				typ = "ID"
			}
			m.Identifiers[typ] = append(m.Identifiers[typ], tok)
		case SlotValue:
			num, unit, ok := numericValued(tok)
			if !ok {
				num, unit = tok, slot.Type
			}
			if unit == "" {
				unit = slot.Type
			}
			m.Values[unit] = append(m.Values[unit], num)
		case SlotLocality:
			m.Localities[slot.Type] = append(m.Localities[slot.Type], tok)
		}
	}
	return m
}

// BindRaw tokenizes raw message text and binds it to the key.
func BindRaw(key *IntelKey, ts time.Time, session, raw string) *Message {
	return Bind(key, nlp.Tokenize(raw), ts, session, raw)
}

// Matches reports whether a tokenized message positionally matches the
// Intel Key's log key.
func Matches(key *IntelKey, tokens []nlp.Token) bool {
	if len(tokens) != len(key.Tokens) {
		return false
	}
	for i, kt := range key.Tokens {
		if kt != spell.Wildcard && kt != tokens[i].Text {
			return false
		}
	}
	return true
}
