// Package logcluster reimplements the LogCluster baseline (Lin et al.,
// ICSE 2016): log sequences are vectorised with IDF-weighted log-key
// counts, agglomeratively clustered by cosine similarity, and a
// representative is kept per cluster as the knowledge base. At detection
// time a sequence that is not similar to any known-normal representative
// is surfaced for examination.
package logcluster

// Model is the trained knowledge base.
type Model struct {
	// Threshold is the cosine-similarity cut for cluster membership.
	Threshold float64
	// idf maps key ID → inverse document frequency over training sessions.
	idf map[int]float64
	// reps are the cluster representative vectors.
	reps []Vector
	// Sizes records each cluster's training membership count.
	Sizes []int
}

// Train clusters the training sessions' key sequences. threshold ≤ 0
// defaults to 0.85 (the original paper's similarity regime).
func Train(seqs [][]int, threshold float64) *Model {
	if threshold <= 0 {
		threshold = 0.85
	}
	m := &Model{Threshold: threshold, idf: computeIDF(seqs)}

	vecs := make([]Vector, len(seqs))
	for i, s := range seqs {
		vecs[i] = m.vectorize(s)
	}

	// Agglomerative clustering with centroid linkage: greedily assign each
	// vector to the nearest existing centroid above threshold, else found a
	// new cluster; a second pass re-merges centroid pairs above threshold.
	var centroids []Vector
	var sizes []int
	for _, v := range vecs {
		best, bestSim := -1, threshold
		for ci, c := range centroids {
			if sim := Cosine(v, c); sim >= bestSim {
				best, bestSim = ci, sim
			}
		}
		if best < 0 {
			centroids = append(centroids, Clone(v))
			sizes = append(sizes, 1)
			continue
		}
		MergeInto(centroids[best], v, sizes[best])
		sizes[best]++
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(centroids) && !changed; i++ {
			for j := i + 1; j < len(centroids); j++ {
				if Cosine(centroids[i], centroids[j]) >= threshold {
					MergeCentroids(centroids, sizes, i, j)
					centroids = append(centroids[:j], centroids[j+1:]...)
					sizes = append(sizes[:j], sizes[j+1:]...)
					changed = true
					break
				}
			}
		}
	}
	m.reps = centroids
	m.Sizes = sizes
	return m
}

// Clusters returns the number of knowledge-base clusters.
func (m *Model) Clusters() int { return len(m.reps) }

// Anomalous reports whether a session's key sequence falls outside every
// known-normal cluster.
func (m *Model) Anomalous(seq []int) bool {
	v := m.vectorize(seq)
	for _, c := range m.reps {
		if Cosine(v, c) >= m.Threshold {
			return false
		}
	}
	return true
}

// Similarity returns the best similarity to any cluster representative.
func (m *Model) Similarity(seq []int) float64 {
	v := m.vectorize(seq)
	best := 0.0
	for _, c := range m.reps {
		if s := Cosine(v, c); s > best {
			best = s
		}
	}
	return best
}

// vectorize builds the IDF-weighted key-count vector of a sequence. Keys
// unseen at training get a fixed high weight so novel keys push sequences
// away from every cluster.
func (m *Model) vectorize(seq []int) Vector {
	tf := map[int]int{}
	for _, k := range seq {
		tf[k]++
	}
	v := map[int]float64{}
	for k, n := range tf {
		w, ok := m.idf[k]
		if !ok {
			w = 3.0
		}
		v[k] = TFWeight(n) * w
	}
	return v
}

// computeIDF derives per-key IDF over the training sessions.
func computeIDF(seqs [][]int) map[int]float64 {
	df := map[int]int{}
	for _, s := range seqs {
		seen := map[int]bool{}
		for _, k := range s {
			if !seen[k] {
				seen[k] = true
				df[k]++
			}
		}
	}
	idf := map[int]float64{}
	for k, d := range df {
		idf[k] = IDF(len(seqs), d)
	}
	return idf
}
