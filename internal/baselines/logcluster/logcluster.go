// Package logcluster reimplements the LogCluster baseline (Lin et al.,
// ICSE 2016): log sequences are vectorised with IDF-weighted log-key
// counts, agglomeratively clustered by cosine similarity, and a
// representative is kept per cluster as the knowledge base. At detection
// time a sequence that is not similar to any known-normal representative
// is surfaced for examination.
package logcluster

import "math"

// Model is the trained knowledge base.
type Model struct {
	// Threshold is the cosine-similarity cut for cluster membership.
	Threshold float64
	// idf maps key ID → inverse document frequency over training sessions.
	idf map[int]float64
	// reps are the cluster representative vectors.
	reps []map[int]float64
	// Sizes records each cluster's training membership count.
	Sizes []int
}

// Train clusters the training sessions' key sequences. threshold ≤ 0
// defaults to 0.85 (the original paper's similarity regime).
func Train(seqs [][]int, threshold float64) *Model {
	if threshold <= 0 {
		threshold = 0.85
	}
	m := &Model{Threshold: threshold, idf: computeIDF(seqs)}

	vecs := make([]map[int]float64, len(seqs))
	for i, s := range seqs {
		vecs[i] = m.vectorize(s)
	}

	// Agglomerative clustering with centroid linkage: greedily assign each
	// vector to the nearest existing centroid above threshold, else found a
	// new cluster; a second pass re-merges centroid pairs above threshold.
	var centroids []map[int]float64
	var sizes []int
	for _, v := range vecs {
		best, bestSim := -1, threshold
		for ci, c := range centroids {
			if sim := cosine(v, c); sim >= bestSim {
				best, bestSim = ci, sim
			}
		}
		if best < 0 {
			centroids = append(centroids, cloneVec(v))
			sizes = append(sizes, 1)
			continue
		}
		mergeInto(centroids[best], v, sizes[best])
		sizes[best]++
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(centroids) && !changed; i++ {
			for j := i + 1; j < len(centroids); j++ {
				if cosine(centroids[i], centroids[j]) >= threshold {
					mergeCentroids(centroids, sizes, i, j)
					centroids = append(centroids[:j], centroids[j+1:]...)
					sizes = append(sizes[:j], sizes[j+1:]...)
					changed = true
					break
				}
			}
		}
	}
	m.reps = centroids
	m.Sizes = sizes
	return m
}

// Clusters returns the number of knowledge-base clusters.
func (m *Model) Clusters() int { return len(m.reps) }

// Anomalous reports whether a session's key sequence falls outside every
// known-normal cluster.
func (m *Model) Anomalous(seq []int) bool {
	v := m.vectorize(seq)
	for _, c := range m.reps {
		if cosine(v, c) >= m.Threshold {
			return false
		}
	}
	return true
}

// Similarity returns the best similarity to any cluster representative.
func (m *Model) Similarity(seq []int) float64 {
	v := m.vectorize(seq)
	best := 0.0
	for _, c := range m.reps {
		if s := cosine(v, c); s > best {
			best = s
		}
	}
	return best
}

// vectorize builds the IDF-weighted key-count vector of a sequence. Keys
// unseen at training get a fixed high weight so novel keys push sequences
// away from every cluster.
func (m *Model) vectorize(seq []int) map[int]float64 {
	tf := map[int]int{}
	for _, k := range seq {
		tf[k]++
	}
	v := map[int]float64{}
	for k, n := range tf {
		w, ok := m.idf[k]
		if !ok {
			w = 3.0
		}
		v[k] = (1 + math.Log(float64(n))) * w
	}
	return v
}

// computeIDF derives per-key IDF over the training sessions.
func computeIDF(seqs [][]int) map[int]float64 {
	df := map[int]int{}
	for _, s := range seqs {
		seen := map[int]bool{}
		for _, k := range s {
			if !seen[k] {
				seen[k] = true
				df[k]++
			}
		}
	}
	idf := map[int]float64{}
	n := float64(len(seqs))
	for k, d := range df {
		idf[k] = math.Log(1 + n/float64(d))
	}
	return idf
}

func cosine(a, b map[int]float64) float64 {
	var dot, na, nb float64
	for k, av := range a {
		if bv, ok := b[k]; ok {
			dot += av * bv
		}
		na += av * av
	}
	for _, bv := range b {
		nb += bv * bv
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

func cloneVec(v map[int]float64) map[int]float64 {
	out := make(map[int]float64, len(v))
	for k, x := range v {
		out[k] = x
	}
	return out
}

// mergeInto updates centroid c (holding size members) with vector v.
func mergeInto(c, v map[int]float64, size int) {
	w := float64(size)
	for k := range c {
		c[k] = c[k] * w / (w + 1)
	}
	for k, x := range v {
		c[k] += x / (w + 1)
	}
}

// mergeCentroids folds centroid j into centroid i.
func mergeCentroids(cs []map[int]float64, sizes []int, i, j int) {
	wi, wj := float64(sizes[i]), float64(sizes[j])
	for k := range cs[i] {
		cs[i][k] = cs[i][k] * wi / (wi + wj)
	}
	for k, x := range cs[j] {
		cs[i][k] += x * wj / (wi + wj)
	}
	sizes[i] += sizes[j]
}
