package logcluster

import (
	"math/rand"
	"testing"
)

// corpus builds sequences of two distinct shapes with mild noise.
func corpus(n int) [][]int {
	rng := rand.New(rand.NewSource(1))
	var out [][]int
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			s := []int{1, 2, 3, 4, 5}
			for j := 0; j < rng.Intn(3); j++ {
				s = append(s, 3)
			}
			out = append(out, s)
		} else {
			out = append(out, []int{10, 11, 12, 13, 10, 11})
		}
	}
	return out
}

func TestTrainFormsClusters(t *testing.T) {
	m := Train(corpus(20), 0.85)
	if c := m.Clusters(); c < 2 || c > 4 {
		t.Errorf("Clusters = %d, want ~2", c)
	}
}

func TestNormalSequencesMatch(t *testing.T) {
	m := Train(corpus(20), 0.85)
	if m.Anomalous([]int{1, 2, 3, 4, 5}) {
		t.Error("known-normal shape flagged")
	}
	if m.Anomalous([]int{10, 11, 12, 13, 10, 11}) {
		t.Error("second shape flagged")
	}
}

func TestNovelSequenceFlagged(t *testing.T) {
	m := Train(corpus(20), 0.85)
	if !m.Anomalous([]int{77, 88, 99, 77, 88, 99}) {
		t.Error("novel-keys sequence not flagged")
	}
}

func TestSimilarityRange(t *testing.T) {
	m := Train(corpus(10), 0.85)
	s := m.Similarity([]int{1, 2, 3, 4, 5})
	if s < 0.85 || s > 1.0001 {
		t.Errorf("Similarity = %f", s)
	}
	if s2 := m.Similarity([]int{500}); s2 > 0.2 {
		t.Errorf("unrelated similarity = %f", s2)
	}
}

func TestThresholdDefault(t *testing.T) {
	m := Train(corpus(4), 0)
	if m.Threshold != 0.85 {
		t.Errorf("default threshold = %f", m.Threshold)
	}
}

func TestEmptyTraining(t *testing.T) {
	m := Train(nil, 0.85)
	if !m.Anomalous([]int{1}) {
		t.Error("empty knowledge base should flag everything")
	}
}
