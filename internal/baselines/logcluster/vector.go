package logcluster

import (
	"math"
	"sort"
)

// Vector is a sparse IDF-weighted term-count vector: feature ID → weight.
// It is the shared vector form for the LogCluster baseline and for the
// analytics layer's anomaly-shape clustering (which reuses this package's
// weighting and similarity machinery rather than reimplementing it).
type Vector = map[int]float64

// Cosine returns the cosine similarity of two sparse vectors.
//
// The dot product and norms are accumulated in sorted key order so the
// floating-point result is identical across runs — map iteration order
// would otherwise let a similarity sitting exactly on a clustering
// threshold flip between runs, which the analytics layer's byte-identity
// guarantees cannot tolerate.
func Cosine(a, b Vector) float64 {
	var dot, na, nb float64
	for _, k := range sortedKeys(a) {
		av := a[k]
		if bv, ok := b[k]; ok {
			dot += av * bv
		}
		na += av * av
	}
	for _, k := range sortedKeys(b) {
		nb += b[k] * b[k]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Clone returns a copy of v.
func Clone(v Vector) Vector {
	out := make(Vector, len(v))
	for k, x := range v {
		out[k] = x
	}
	return out
}

// MergeInto updates centroid c (holding size members) with vector v.
func MergeInto(c, v Vector, size int) {
	w := float64(size)
	for k := range c {
		c[k] = c[k] * w / (w + 1)
	}
	for k, x := range v {
		c[k] += x / (w + 1)
	}
}

// MergeCentroids folds centroid j into centroid i, weighting by sizes.
func MergeCentroids(cs []Vector, sizes []int, i, j int) {
	wi, wj := float64(sizes[i]), float64(sizes[j])
	for k := range cs[i] {
		cs[i][k] = cs[i][k] * wi / (wi + wj)
	}
	for k, x := range cs[j] {
		cs[i][k] += x * wj / (wi + wj)
	}
	sizes[i] += sizes[j]
}

// IDF is the inverse-document-frequency weight of a feature occurring in
// docFreq of numDocs documents: log(1 + N/df).
func IDF(numDocs, docFreq int) float64 {
	return math.Log(1 + float64(numDocs)/float64(docFreq))
}

// TFWeight is the sublinear term-frequency weight of a feature occurring
// n times in one document: 1 + log(n).
func TFWeight(n int) float64 {
	return 1 + math.Log(float64(n))
}

func sortedKeys(v Vector) []int {
	keys := make([]int, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
