package logcluster

import (
	"math"
	"testing"
)

func TestSizesAccountForAllSessions(t *testing.T) {
	seqs := corpus(20)
	m := Train(seqs, 0.85)
	if len(m.Sizes) != m.Clusters() {
		t.Fatalf("len(Sizes) = %d, Clusters = %d", len(m.Sizes), m.Clusters())
	}
	total := 0
	for _, n := range m.Sizes {
		total += n
	}
	if total != len(seqs) {
		t.Errorf("cluster sizes sum to %d, trained on %d sessions", total, len(seqs))
	}
}

func TestMergePassFoldsCentroids(t *testing.T) {
	// {1,2} and {3,4} are orthogonal, so the greedy pass founds two
	// centroids; the bridging sequence {1,2,3,4} then drags its centroid
	// toward the other until the second-pass re-merge folds them. The two
	// fully disjoint corpus shapes, by contrast, can never merge — cosine 0
	// clears no positive threshold.
	seqs := [][]int{{1, 2}, {3, 4}, {1, 2, 3, 4}, {1, 2, 3, 4}}
	m := Train(seqs, 0.3)
	if m.Clusters() != 1 {
		t.Fatalf("bridged corpus left %d clusters, want 1", m.Clusters())
	}
	if m.Sizes[0] != len(seqs) {
		t.Errorf("merged cluster size = %d, want %d", m.Sizes[0], len(seqs))
	}
	if m2 := Train(corpus(8), 0.3); m2.Clusters() != 2 {
		t.Errorf("disjoint shapes collapsed to %d clusters, want 2", m2.Clusters())
	}
}

func TestUnseenKeyWeight(t *testing.T) {
	// Keys unseen at training carry the fixed weight 3.0, which exceeds
	// every trained IDF here and pushes novel sequences out of all
	// clusters.
	m := Train(corpus(10), 0.85)
	v := m.vectorize([]int{999})
	if w := v[999]; math.Abs(w-3.0) > 1e-9 {
		t.Errorf("unseen key weight = %f, want 3.0 (tf=1 → 1+log(1)=1)", w)
	}
	// A trained key appearing once weighs exactly its IDF.
	v2 := m.vectorize([]int{1})
	if w, want := v2[1], m.idf[1]; math.Abs(w-want) > 1e-9 {
		t.Errorf("trained key weight = %f, want idf %f", w, want)
	}
}

func TestSimilarityEdges(t *testing.T) {
	m := Train(corpus(10), 0.85)
	// The empty sequence vectorises to the zero vector; cosine guards the
	// zero norm and Similarity stays 0, so it is anomalous by definition.
	if s := m.Similarity(nil); s != 0 {
		t.Errorf("Similarity(nil) = %f, want 0", s)
	}
	if !m.Anomalous(nil) {
		t.Error("empty sequence should be anomalous")
	}
	// An exact replay of a pure training shape scores essentially 1.
	if s := m.Similarity([]int{10, 11, 12, 13, 10, 11}); s < 0.999 {
		t.Errorf("replay similarity = %f, want ~1", s)
	}
}

func TestCosineZeroVectors(t *testing.T) {
	if c := Cosine(map[int]float64{}, map[int]float64{1: 1}); c != 0 {
		t.Errorf("Cosine(zero, v) = %f", c)
	}
	if c := Cosine(map[int]float64{1: 1}, map[int]float64{}); c != 0 {
		t.Errorf("Cosine(v, zero) = %f", c)
	}
	if c := Cosine(map[int]float64{1: 2}, map[int]float64{1: 3}); math.Abs(c-1) > 1e-9 {
		t.Errorf("cosine of parallel vectors = %f, want 1", c)
	}
}

func TestTrainDeterministic(t *testing.T) {
	// Clustering iterates slices only, never maps, so two trainings on the
	// same corpus must agree exactly.
	a, b := Train(corpus(20), 0.85), Train(corpus(20), 0.85)
	if a.Clusters() != b.Clusters() {
		t.Fatalf("cluster counts differ: %d vs %d", a.Clusters(), b.Clusters())
	}
	for i := range a.Sizes {
		if a.Sizes[i] != b.Sizes[i] {
			t.Errorf("cluster %d size %d vs %d", i, a.Sizes[i], b.Sizes[i])
		}
	}
	probe := []int{1, 2, 3, 4, 5, 77}
	if sa, sb := a.Similarity(probe), b.Similarity(probe); math.Abs(sa-sb) > 1e-12 {
		t.Errorf("similarity differs across identical trainings: %f vs %f", sa, sb)
	}
}
