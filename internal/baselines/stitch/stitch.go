// Package stitch reimplements the S³-graph construction of Stitch (Zhao
// et al., OSDI 2016), the workflow-reconstruction baseline of §6.3. Stitch
// is identifier-only: it mines the relationships between identifier-type
// pairs from their value co-occurrences — 1:1 (interchangeable), 1:n
// (hierarchical), and m:n (only the combination identifies an object) —
// and arranges types into the S³ hierarchy. Its limitation, which the
// HW-graph addresses, is that no semantic information (entities,
// operations) is attached.
package stitch

import (
	"fmt"
	"sort"
	"strings"

	"intellog/internal/extract"
)

// RelKind is the S³ relationship between two identifier types.
type RelKind string

// S³ relationship kinds.
const (
	RelEmpty RelKind = "empty"
	Rel1to1  RelKind = "1:1"
	Rel1toN  RelKind = "1:n"
	RelNto1  RelKind = "n:1"
	RelMtoN  RelKind = "m:n"
)

// Graph is the mined S³ graph.
type Graph struct {
	// Types are the identifier types in first-seen order.
	Types []string
	// Rel maps an ordered type pair {A,B} (A < B lexicographically) to the
	// relationship of A towards B.
	Rel map[[2]string]RelKind
}

// Build mines the S³ graph from Intel Messages: identifier values
// co-occurring in one message associate their types. Stitch treats
// localities (host names, addresses) as identifiers too — its Fig. 9 graph
// roots at {HOST / IP ADDR} — so locality classes join the type universe.
func Build(msgs []*extract.Message) *Graph {
	g := &Graph{Rel: map[[2]string]RelKind{}}
	seenType := map[string]bool{}
	// assoc[{a,b}] maps a-value → set of b-values (a < b).
	assoc := map[[2]string]map[string]map[string]bool{}
	rev := map[[2]string]map[string]map[string]bool{}

	for _, m := range msgs {
		vals := map[string][]string{}
		for t, vs := range m.Identifiers {
			vals[t] = vs
		}
		for cls, vs := range m.Localities {
			vals[cls] = append(vals[cls], vs...)
		}
		types := make([]string, 0, len(vals))
		for t := range vals {
			types = append(types, t)
			if !seenType[t] {
				seenType[t] = true
				g.Types = append(g.Types, t)
			}
		}
		sort.Strings(types)
		for i := 0; i < len(types); i++ {
			for j := i + 1; j < len(types); j++ {
				a, b := types[i], types[j]
				key := [2]string{a, b}
				if assoc[key] == nil {
					assoc[key] = map[string]map[string]bool{}
					rev[key] = map[string]map[string]bool{}
				}
				for _, av := range vals[a] {
					for _, bv := range vals[b] {
						addAssoc(assoc[key], av, bv)
						addAssoc(rev[key], bv, av)
					}
				}
			}
		}
	}

	for key, fwd := range assoc {
		g.Rel[key] = classify(fwd, rev[key])
	}
	return g
}

func addAssoc(m map[string]map[string]bool, k, v string) {
	if m[k] == nil {
		m[k] = map[string]bool{}
	}
	m[k][v] = true
}

// classify derives the relationship kind from the forward and reverse
// fanouts.
func classify(fwd, rev map[string]map[string]bool) RelKind {
	fOut := maxFanout(fwd)
	rOut := maxFanout(rev)
	switch {
	case fOut == 0:
		return RelEmpty
	case fOut == 1 && rOut == 1:
		return Rel1to1
	case fOut > 1 && rOut == 1:
		return Rel1toN
	case fOut == 1 && rOut > 1:
		return RelNto1
	default:
		return RelMtoN
	}
}

func maxFanout(m map[string]map[string]bool) int {
	best := 0
	for _, vs := range m {
		if len(vs) > best {
			best = len(vs)
		}
	}
	return best
}

// Relation returns the relationship of type a towards type b.
func (g *Graph) Relation(a, b string) RelKind {
	if a == b {
		return RelEmpty
	}
	if a < b {
		if r, ok := g.Rel[[2]string{a, b}]; ok {
			return r
		}
		return RelEmpty
	}
	r := g.Relation(b, a)
	switch r {
	case Rel1toN:
		return RelNto1
	case RelNto1:
		return Rel1toN
	default:
		return r
	}
}

// Children returns the types that sit under t in the hierarchy (t 1:n
// child).
func (g *Graph) Children(t string) []string {
	var out []string
	for _, other := range g.Types {
		if other != t && g.Relation(t, other) == Rel1toN {
			out = append(out, other)
		}
	}
	sort.Strings(out)
	return out
}

// Render prints the Fig. 9-style relation list, with isolated identifier
// types (Fig. 9's standalone {BROADCAST}) on a final line.
func (g *Graph) Render() string {
	var b strings.Builder
	types := append([]string(nil), g.Types...)
	sort.Strings(types)
	related := map[string]bool{}
	for _, t := range types {
		for _, u := range types {
			if t != u && g.Relation(t, u) != RelEmpty {
				related[t] = true
			}
		}
	}
	for i := 0; i < len(types); i++ {
		for j := i + 1; j < len(types); j++ {
			a, z := types[i], types[j]
			r := g.Relation(a, z)
			if r == RelEmpty {
				continue
			}
			if r == RelNto1 { // print hierarchical pairs parent-first
				a, z, r = z, a, Rel1toN
			}
			fmt.Fprintf(&b, "{%s} -> {%s}: %s\n", a, z, r)
		}
	}
	var isolated []string
	for _, t := range types {
		if !related[t] {
			isolated = append(isolated, "{"+t+"}")
		}
	}
	if len(isolated) > 0 {
		fmt.Fprintf(&b, "isolated: %s\n", strings.Join(isolated, " "))
	}
	return b.String()
}
