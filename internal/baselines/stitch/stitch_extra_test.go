package stitch

import (
	"strings"
	"testing"

	"intellog/internal/extract"
)

func TestOneToOneRelation(t *testing.T) {
	// Application and attempt IDs pair bijectively: 1:1.
	var msgs []*extract.Message
	for i := 0; i < 3; i++ {
		msgs = append(msgs, msg(map[string][]string{
			"APP":     {"app" + itoa(i)},
			"ATTEMPT": {"att" + itoa(i)},
		}))
	}
	g := Build(msgs)
	if r := g.Relation("APP", "ATTEMPT"); r != Rel1to1 {
		t.Errorf("APP->ATTEMPT = %s, want 1:1", r)
	}
	if r := g.Relation("ATTEMPT", "APP"); r != Rel1to1 {
		t.Errorf("ATTEMPT->APP = %s, want 1:1 (symmetric)", r)
	}
}

func TestLocalitiesJoinTypeUniverse(t *testing.T) {
	// Stitch's Fig. 9 graph roots at locality classes; Build must fold
	// Localities in alongside Identifiers.
	msgs := []*extract.Message{
		{
			Identifiers: map[string][]string{"EXECUTOR": {"exec1"}},
			Localities:  map[string][]string{"ADDR": {"host1:3801", "host1:3802"}},
		},
		{
			Identifiers: map[string][]string{"EXECUTOR": {"exec2"}},
			Localities:  map[string][]string{"ADDR": {"host2:3801"}},
		},
	}
	g := Build(msgs)
	found := false
	for _, ty := range g.Types {
		if ty == "ADDR" {
			found = true
		}
	}
	if !found {
		t.Fatalf("locality class ADDR missing from type universe: %v", g.Types)
	}
	// exec1 maps to two addresses, each address to one executor: 1:n.
	if r := g.Relation("EXECUTOR", "ADDR"); r != Rel1toN {
		t.Errorf("EXECUTOR->ADDR = %s, want 1:n", r)
	}
}

func TestRelationUnknownTypes(t *testing.T) {
	g := Build(sparkCorpus())
	if r := g.Relation("NOPE", "HOST"); r != RelEmpty {
		t.Errorf("unknown type relation = %s, want empty", r)
	}
	if r := g.Relation("NOPE", "ALSO_NOPE"); r != RelEmpty {
		t.Errorf("two unknown types = %s, want empty", r)
	}
}

func TestChildrenMultipleAndSorted(t *testing.T) {
	// One job fans out to both mappers and reducers: JOB has two child
	// types, returned sorted.
	var msgs []*extract.Message
	for i := 0; i < 2; i++ {
		msgs = append(msgs, msg(map[string][]string{
			"JOB": {"job1"}, "MAP": {"m" + itoa(i)},
		}))
		msgs = append(msgs, msg(map[string][]string{
			"JOB": {"job1"}, "REDUCE": {"r" + itoa(i)},
		}))
	}
	// A second job keeps the reverse fanout at 1.
	msgs = append(msgs, msg(map[string][]string{"JOB": {"job2"}, "MAP": {"m9"}}))
	msgs = append(msgs, msg(map[string][]string{"JOB": {"job2"}, "REDUCE": {"r9"}}))
	g := Build(msgs)
	kids := g.Children("JOB")
	if len(kids) != 2 || kids[0] != "MAP" || kids[1] != "REDUCE" {
		t.Errorf("Children(JOB) = %v, want [MAP REDUCE]", kids)
	}
	if kids := g.Children("MAP"); len(kids) != 0 {
		t.Errorf("Children(MAP) = %v, want none", kids)
	}
}

func TestRenderIsolatedTypes(t *testing.T) {
	// A type that never co-occurs with any other (Fig. 9's standalone
	// {BROADCAST}) lands on the isolated line.
	msgs := append(sparkCorpus(), msg(map[string][]string{"BROADCAST": {"b1"}}))
	g := Build(msgs)
	out := g.Render()
	if !strings.Contains(out, "isolated: {BROADCAST}") {
		t.Errorf("Render missing isolated line:\n%s", out)
	}
	// Hierarchical pairs print parent-first even when the stored order is
	// the n:1 direction.
	if strings.Contains(out, "n:1") {
		t.Errorf("Render printed an n:1 pair instead of flipping it:\n%s", out)
	}
}

func TestRenderDeterministic(t *testing.T) {
	// Render walks sorted copies of map-backed state; two calls (and two
	// independent builds) must agree byte-for-byte.
	a := Build(sparkCorpus())
	b := Build(sparkCorpus())
	if a.Render() != a.Render() {
		t.Error("Render not stable across calls on one graph")
	}
	if a.Render() != b.Render() {
		t.Error("Render differs across identical builds")
	}
}
