package stitch

import (
	"strings"
	"testing"

	"intellog/internal/extract"
)

// msg builds an Intel Message carrying identifier values.
func msg(ids map[string][]string) *extract.Message {
	return &extract.Message{Identifiers: ids}
}

func sparkCorpus() []*extract.Message {
	var msgs []*extract.Message
	// Two hosts, four executors (two per host): HOST 1:n EXECUTOR.
	hosts := []string{"host1", "host2"}
	tid := 0
	for e := 0; e < 4; e++ {
		host := hosts[e%2]
		exec := []string{"exec1", "exec2", "exec3", "exec4"}[e]
		msgs = append(msgs, msg(map[string][]string{"HOST": {host}, "EXECUTOR": {exec}}))
		// Each executor runs tasks in two stages; TIDs are globally unique.
		for stage := 0; stage < 2; stage++ {
			for task := 0; task < 3; task++ {
				tid++
				msgs = append(msgs, msg(map[string][]string{
					"EXECUTOR": {exec},
					"STAGE":    {[]string{"s0", "s1"}[stage]},
					"TASK":     {[]string{"t0", "t1", "t2"}[task]},
					"TID":      {itoa(tid)},
				}))
			}
		}
	}
	return msgs
}

func TestHostExecutorHierarchy(t *testing.T) {
	g := Build(sparkCorpus())
	if r := g.Relation("HOST", "EXECUTOR"); r != Rel1toN {
		t.Errorf("HOST->EXECUTOR = %s, want 1:n", r)
	}
	if r := g.Relation("EXECUTOR", "HOST"); r != RelNto1 {
		t.Errorf("EXECUTOR->HOST = %s, want n:1", r)
	}
}

func TestStageTidHierarchy(t *testing.T) {
	g := Build(sparkCorpus())
	if r := g.Relation("STAGE", "TID"); r != Rel1toN {
		t.Errorf("STAGE->TID = %s, want 1:n", r)
	}
	// STAGE and TASK only identify a unit together (task indices repeat
	// across stages): m:n.
	if r := g.Relation("STAGE", "TASK"); r != RelMtoN {
		t.Errorf("STAGE->TASK = %s, want m:n", r)
	}
}

func TestTidUniquePerMessageIs1to1WithNothing(t *testing.T) {
	g := Build(sparkCorpus())
	if r := g.Relation("TID", "TASK"); r != RelNto1 {
		t.Errorf("TID->TASK = %s, want n:1 (many TIDs per task index)", r)
	}
}

func TestEmptyRelationForNonCooccurring(t *testing.T) {
	g := Build(sparkCorpus())
	if r := g.Relation("HOST", "TID"); r != RelEmpty {
		t.Errorf("HOST->TID = %s, want empty (never co-occur)", r)
	}
	if r := g.Relation("HOST", "HOST"); r != RelEmpty {
		t.Errorf("self relation = %s", r)
	}
}

func TestChildrenAndRender(t *testing.T) {
	g := Build(sparkCorpus())
	kids := g.Children("HOST")
	if len(kids) != 1 || kids[0] != "EXECUTOR" {
		t.Errorf("Children(HOST) = %v", kids)
	}
	out := g.Render()
	if !strings.Contains(out, "{HOST} -> {EXECUTOR}: 1:n") {
		t.Errorf("Render missing hierarchy:\n%s", out)
	}
}

func TestBuildEmpty(t *testing.T) {
	g := Build(nil)
	if len(g.Types) != 0 || len(g.Rel) != 0 {
		t.Error("empty corpus produced relations")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
