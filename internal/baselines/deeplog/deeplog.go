// Package deeplog reimplements the DeepLog baseline (Du et al., CCS 2017)
// with an n-gram next-key language model in place of the original LSTM
// (pure-stdlib substitution; see DESIGN.md). The anomaly rule is
// DeepLog's: slide a history window over the session's log-key sequence,
// predict the top-g most probable next keys, and alarm when the observed
// key is not among them. The paper's Table 8 argument is structural — any
// next-key sequence model degrades on analytics logs because intra-session
// parallelism and data-dependent lengths make the next key unpredictable —
// and holds for this model class as well.
package deeplog

import (
	"fmt"
	"sort"
	"strings"
)

// EndKey is the virtual end-of-session key appended to every sequence:
// the model learns which histories legitimately terminate a session, so
// abruptly truncated sessions (SIGKILL, node loss) raise an alarm at the
// end-of-sequence prediction.
const EndKey = -2

// Model is a trained order-h next-key predictor.
type Model struct {
	// H is the history window length.
	H int
	// counts maps a history signature to next-key frequencies.
	counts map[string]map[int]int
	// known marks key IDs seen during training.
	known map[int]bool
}

// Train fits the model on normal sessions' key-ID sequences.
func Train(seqs [][]int, h int) *Model {
	if h < 1 {
		h = 3
	}
	m := &Model{H: h, counts: map[string]map[int]int{}, known: map[int]bool{}}
	m.known[EndKey] = true
	for _, raw := range seqs {
		seq := append(append([]int(nil), raw...), EndKey)
		for _, k := range seq {
			m.known[k] = true
		}
		for i := 0; i < len(seq); i++ {
			hist := history(seq, i, h)
			c := m.counts[hist]
			if c == nil {
				c = map[int]int{}
				m.counts[hist] = c
			}
			c[seq[i]]++
		}
	}
	return m
}

// history renders the h keys before position i as a signature.
func history(seq []int, i, h int) string {
	lo := i - h
	if lo < 0 {
		lo = 0
	}
	parts := make([]string, 0, i-lo)
	for _, k := range seq[lo:i] {
		parts = append(parts, fmt.Sprintf("%d", k))
	}
	return strings.Join(parts, ",")
}

// TopG returns the g most frequent next keys for a history.
func (m *Model) TopG(hist string, g int) []int {
	c := m.counts[hist]
	type kv struct {
		key   int
		count int
	}
	items := make([]kv, 0, len(c))
	for k, n := range c {
		items = append(items, kv{k, n})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].count != items[j].count {
			return items[i].count > items[j].count
		}
		return items[i].key < items[j].key
	})
	if len(items) > g {
		items = items[:g]
	}
	out := make([]int, len(items))
	for i, it := range items {
		out[i] = it.key
	}
	return out
}

// Anomalies returns the positions in seq where the observed key is not in
// the top-g prediction (or is unknown, or the history was never seen).
func (m *Model) Anomalies(raw []int, g int) []int {
	if g < 1 {
		g = 9
	}
	seq := append(append([]int(nil), raw...), EndKey)
	var out []int
	for i := 0; i < len(seq); i++ {
		if !m.known[seq[i]] {
			out = append(out, i)
			continue
		}
		hist := history(seq, i, m.H)
		preds := m.TopG(hist, g)
		hit := false
		for _, p := range preds {
			if p == seq[i] {
				hit = true
				break
			}
		}
		if !hit {
			out = append(out, i)
		}
	}
	return out
}

// SessionAnomalous applies DeepLog's session rule: any anomalous position
// marks the whole session.
func (m *Model) SessionAnomalous(seq []int, g int) bool {
	return len(m.Anomalies(seq, g)) > 0
}
