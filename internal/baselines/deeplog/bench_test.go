package deeplog

import (
	"math/rand"
	"testing"
)

func benchSeqs(n, l int) [][]int {
	rng := rand.New(rand.NewSource(1))
	seqs := make([][]int, n)
	for i := range seqs {
		seq := make([]int, l)
		for j := range seq {
			seq[j] = rng.Intn(40)
		}
		seqs[i] = seq
	}
	return seqs
}

func BenchmarkTrain(b *testing.B) {
	seqs := benchSeqs(100, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(seqs, 3)
	}
}

func BenchmarkSessionAnomalous(b *testing.B) {
	seqs := benchSeqs(100, 200)
	m := Train(seqs, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SessionAnomalous(seqs[i%len(seqs)], 9)
	}
}
