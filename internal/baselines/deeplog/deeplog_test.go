package deeplog

import (
	"reflect"
	"testing"
)

func trainFixed() *Model {
	seqs := [][]int{
		{1, 2, 3, 4, 5},
		{1, 2, 3, 4, 5},
		{1, 2, 4, 3, 5},
	}
	return Train(seqs, 2)
}

func TestCleanSequenceNotAnomalous(t *testing.T) {
	m := trainFixed()
	if m.SessionAnomalous([]int{1, 2, 3, 4, 5}, 9) {
		t.Error("trained sequence flagged")
	}
}

func TestUnknownKeyAnomalous(t *testing.T) {
	m := trainFixed()
	pos := m.Anomalies([]int{1, 2, 99, 4, 5}, 9)
	if len(pos) == 0 || pos[0] != 2 {
		t.Errorf("Anomalies = %v, want unknown key at 2", pos)
	}
}

func TestUnseenHistoryAnomalous(t *testing.T) {
	m := trainFixed()
	// 5 directly after 1 was never observed.
	if !m.SessionAnomalous([]int{1, 5, 5, 5}, 9) {
		t.Error("unseen transition not flagged")
	}
}

func TestTopGOrdering(t *testing.T) {
	m := Train([][]int{{1, 2}, {1, 2}, {1, 3}}, 1)
	got := m.TopG("1", 1)
	if !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("TopG = %v, want [2]", got)
	}
	got = m.TopG("1", 5)
	if !reflect.DeepEqual(got, []int{2, 3}) {
		t.Errorf("TopG = %v, want [2 3]", got)
	}
}

func TestSmallGIncreasesAlarms(t *testing.T) {
	// With many equally likely next keys, small g must alarm more — the
	// mechanism behind DeepLog's precision collapse on parallel logs.
	var seqs [][]int
	for i := 0; i < 10; i++ {
		seqs = append(seqs, []int{0, 1 + i%5, 6})
	}
	m := Train(seqs, 1)
	wide := 0
	narrow := 0
	for i := 0; i < 5; i++ {
		seq := []int{0, 1 + i, 6}
		if m.SessionAnomalous(seq, 5) {
			wide++
		}
		if m.SessionAnomalous(seq, 1) {
			narrow++
		}
	}
	if wide != 0 {
		t.Errorf("g=5 flagged %d/5 normal variants", wide)
	}
	if narrow < 3 {
		t.Errorf("g=1 flagged only %d/5 variants; expected most", narrow)
	}
}

func TestTrainDefaults(t *testing.T) {
	m := Train(nil, 0)
	if m.H != 3 {
		t.Errorf("default H = %d", m.H)
	}
	if !m.SessionAnomalous([]int{1}, 0) {
		t.Error("empty model should flag everything")
	}
}
