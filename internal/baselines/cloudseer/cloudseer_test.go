package cloudseer

import "testing"

func fixedCorpus() [][]int {
	// An OpenStack-like request lifecycle: short, fixed order.
	return [][]int{
		{1, 2, 3, 4, 5},
		{1, 2, 3, 4, 5},
		{1, 2, 3, 4, 5},
	}
}

func TestFixedOrderSessionsAccepted(t *testing.T) {
	m := Train(fixedCorpus())
	if m.Anomalous([]int{1, 2, 3, 4, 5}) {
		t.Error("canonical sequence flagged")
	}
	if m.States() != 5 || m.Transitions() != 4 {
		t.Errorf("automaton shape: states=%d transitions=%d", m.States(), m.Transitions())
	}
}

func TestDeviationsFlagged(t *testing.T) {
	m := Train(fixedCorpus())
	if !m.Anomalous([]int{1, 3, 2, 4, 5}) {
		t.Error("reordered sequence accepted")
	}
	if !m.Anomalous([]int{1, 2, 3}) {
		t.Error("truncated sequence accepted (bad end)")
	}
	if !m.Anomalous([]int{2, 3, 4, 5}) {
		t.Error("bad start accepted")
	}
	if !m.Anomalous([]int{1, 2, 99, 4, 5}) {
		t.Error("unknown key accepted")
	}
}

func TestInterleavedSessionsDefeatAutomaton(t *testing.T) {
	// Two concurrent subroutines [1 2 3] and [7 8 9] interleave — analytics
	// behaviour. Training sees two interleavings; a third legitimate one
	// still deviates, the §8 failure mode.
	m := Train([][]int{
		{1, 7, 2, 8, 3, 9},
		{7, 1, 8, 2, 9, 3},
	})
	if !m.Anomalous([]int{1, 2, 7, 8, 3, 9}) {
		t.Error("novel legitimate interleaving unexpectedly accepted")
	}
}

func TestEmpty(t *testing.T) {
	m := Train(nil)
	if !m.Anomalous([]int{1}) {
		t.Error("empty automaton should reject everything")
	}
	if m.Anomalous(nil) {
		t.Error("empty sequence should pass trivially")
	}
}
