// Package cloudseer implements an automaton-based workflow checker in the
// style of CloudSeer (Yu et al., ASPLOS 2016), the related-work baseline
// of §8. CloudSeer mines an automaton over log keys from the short,
// fixed-order sessions of infrastructure-level systems (e.g. OpenStack
// request lifecycles) and flags sessions that leave the automaton. The
// paper argues it "cannot be applied to distributed data analytics
// systems since the lengths and orders of logs in such systems can vary
// significantly" — the experiments package demonstrates exactly that
// contrast on simulated corpora.
package cloudseer

// Model is a mined workflow automaton: the observed start keys, key
// transitions, and end keys of normal sessions.
type Model struct {
	starts map[int]bool
	ends   map[int]bool
	next   map[int]map[int]bool
	known  map[int]bool
}

// Train mines the automaton from normal sessions' key-ID sequences.
func Train(seqs [][]int) *Model {
	m := &Model{
		starts: map[int]bool{}, ends: map[int]bool{},
		next: map[int]map[int]bool{}, known: map[int]bool{},
	}
	for _, seq := range seqs {
		if len(seq) == 0 {
			continue
		}
		m.starts[seq[0]] = true
		m.ends[seq[len(seq)-1]] = true
		for i, k := range seq {
			m.known[k] = true
			if i == 0 {
				continue
			}
			prev := seq[i-1]
			if m.next[prev] == nil {
				m.next[prev] = map[int]bool{}
			}
			m.next[prev][k] = true
		}
	}
	return m
}

// Deviations returns the positions at which a session's key sequence
// leaves the automaton: an unknown key, an unobserved transition, a bad
// start, or a bad end.
func (m *Model) Deviations(seq []int) []int {
	var out []int
	for i, k := range seq {
		switch {
		case !m.known[k]:
			out = append(out, i)
		case i == 0 && !m.starts[k]:
			out = append(out, i)
		case i > 0 && !m.next[seq[i-1]][k]:
			out = append(out, i)
		}
	}
	if len(seq) > 0 && !m.ends[seq[len(seq)-1]] {
		out = append(out, len(seq)-1)
	}
	return out
}

// Anomalous applies the session rule: any deviation flags the session.
func (m *Model) Anomalous(seq []int) bool { return len(m.Deviations(seq)) > 0 }

// States returns the number of known keys (automaton states).
func (m *Model) States() int { return len(m.known) }

// Transitions returns the number of mined transitions.
func (m *Model) Transitions() int {
	n := 0
	for _, t := range m.next {
		n += len(t)
	}
	return n
}
