// Package metrics is a dependency-free Prometheus-text-format metrics
// registry for the serving layer. It implements the slice of the
// exposition format the daemon needs — counters and gauges, with labels,
// rendered deterministically — rather than pulling the full client
// library into a repo whose other code paths never touch it.
//
// Counters are registered once and updated with atomic adds on the hot
// path. Gauges are collected at scrape time through callbacks, which
// suits the serving layer's sources (queue depths, in-flight sessions,
// cache hit rates) that are cheap to read but wasteful to mirror on
// every update.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is one monotonically increasing series. Safe for concurrent
// use; Add/Inc are lock-free.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (which must be ≥ 0 to keep the series monotone; the
// registry does not enforce it).
func (c *Counter) Add(delta float64) {
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Label is one name="value" pair on a series.
type Label struct {
	Key, Value string
}

// Sample is one gauge observation produced by a collector callback.
type Sample struct {
	Labels []Label
	Value  float64
}

// family is one metric name: its metadata and series.
type family struct {
	name, help, typ string

	mu     sync.Mutex
	series map[string]*Counter // rendered label string → counter
	order  []string            // registration order of label strings
	// collect, when set, produces the family's samples at scrape time
	// (gauge families). Counter families leave it nil.
	collect func() []Sample
}

// Registry holds the daemon's metric families and renders them in the
// Prometheus text exposition format.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// family returns (or creates) the named family, checking metadata
// consistency. Registering the same name with a different type or a
// collector over a counter family panics — both are programming errors.
func (r *Registry) family(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: map[string]*Counter{}}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s and %s", name, f.typ, typ))
	}
	return f
}

// Counter returns the counter series for name with the given labels,
// creating family and series on first use. Calling it per-update is
// fine (a map probe), but hot paths should hold on to the returned
// *Counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.family(name, help, "counter")
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.series[key]
	if !ok {
		c = &Counter{}
		f.series[key] = c
		f.order = append(f.order, key)
	}
	return c
}

// GaugeFunc registers a gauge family whose samples are produced by fn at
// every scrape. Re-registering the same name replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() []Sample) {
	f := r.family(name, help, "gauge")
	f.mu.Lock()
	f.collect = fn
	f.mu.Unlock()
}

// CounterFunc registers a counter family collected at scrape time, for
// monotone counts that already live elsewhere (e.g. atomics on a hot
// struct) and would be wasteful to mirror per update.
func (r *Registry) CounterFunc(name, help string, fn func() []Sample) {
	f := r.family(name, help, "counter")
	f.mu.Lock()
	f.collect = fn
	f.mu.Unlock()
}

// WriteText renders every family in the Prometheus text exposition
// format, families sorted by name and series by label string, so scrapes
// are deterministic and diffable.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		f.mu.Lock()
		type line struct {
			labels string
			value  float64
		}
		var lines []line
		if f.collect != nil {
			for _, s := range f.collect() {
				lines = append(lines, line{renderLabels(s.Labels), s.Value})
			}
		} else {
			for key, c := range f.series {
				lines = append(lines, line{key, c.Value()})
			}
		}
		f.mu.Unlock()
		sort.Slice(lines, func(i, j int) bool { return lines[i].labels < lines[j].labels })
		for _, l := range lines {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, l.labels,
				strconv.FormatFloat(l.value, 'g', -1, 64)); err != nil {
				return err
			}
		}
	}
	return nil
}

// renderLabels renders a label set as {k="v",...} with keys sorted, or ""
// for an unlabeled series. Values are escaped per the exposition format.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes backslash, double quote and newline, per the
// Prometheus text format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}
