package metrics

import (
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("intellogd_ingest_records_total", "records accepted", Label{"tenant", "a"}).Add(3)
	r.Counter("intellogd_ingest_records_total", "records accepted", Label{"tenant", "b"}).Inc()
	r.Counter("intellogd_up", "always one").Inc()

	got := render(t, r)
	for _, want := range []string{
		"# HELP intellogd_ingest_records_total records accepted",
		"# TYPE intellogd_ingest_records_total counter",
		`intellogd_ingest_records_total{tenant="a"} 3`,
		`intellogd_ingest_records_total{tenant="b"} 1`,
		"# TYPE intellogd_up counter",
		"intellogd_up 1",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// Families sorted by name → deterministic scrapes.
	if again := render(t, r); again != got {
		t.Error("render differs across scrapes with unchanged state")
	}
}

func TestCounterSeriesIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "h", Label{"k", "v"})
	b := r.Counter("x_total", "h", Label{"k", "v"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Fatalf("counter identity broken: %v", b.Value())
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	depth := 7.0
	r.GaugeFunc("intellogd_queue_records", "queued records", func() []Sample {
		return []Sample{
			{Labels: []Label{{"tenant", "b"}}, Value: depth},
			{Labels: []Label{{"tenant", "a"}}, Value: 1},
		}
	})
	got := render(t, r)
	ai := strings.Index(got, `intellogd_queue_records{tenant="a"} 1`)
	bi := strings.Index(got, `intellogd_queue_records{tenant="b"} 7`)
	if ai < 0 || bi < 0 || ai > bi {
		t.Fatalf("gauge samples missing or unsorted:\n%s", got)
	}
	depth = 9
	if !strings.Contains(render(t, r), `{tenant="b"} 9`) {
		t.Error("gauge not collected fresh at scrape time")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "h", Label{"k", "a\"b\\c\nd"}).Inc()
	got := render(t, r)
	if !strings.Contains(got, `esc_total{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("label value not escaped:\n%s", got)
	}
}

func TestCounterConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "h")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("lost updates: %v", c.Value())
	}
}
