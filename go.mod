module intellog

go 1.22
