// Command benchdiff compares two benchjson archives (see
// internal/benchjson) on one higher-is-better metric and exits nonzero
// when the current numbers regress past the tolerance band. It is the
// comparison half of scripts/bench_compare.sh:
//
//	benchdiff -baseline BENCH_detect.json -current /tmp/detect.json \
//	    -metric logs_per_sec -tolerance 0.35
//
// Every benchmark in the baseline that carries the metric must be
// present in the current archive and within tolerance of its baseline
// value; extra benchmarks in the current archive are ignored.
package main

import (
	"flag"
	"fmt"
	"os"

	"intellog/internal/benchjson"
)

func main() {
	var (
		baseline  = flag.String("baseline", "", "committed benchjson archive (the reference)")
		current   = flag.String("current", "", "freshly generated benchjson archive")
		metric    = flag.String("metric", "logs_per_sec", "higher-is-better metric to compare")
		tolerance = flag.Float64("tolerance", 0.35, "allowed fractional slowdown before failing (0.35 = -35%)")
	)
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -current are required")
		os.Exit(2)
	}
	base, err := benchjson.Load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := benchjson.Load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	deltas := benchjson.Compare(base, cur, *metric, *tolerance)
	if len(deltas) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: baseline %s has no benchmarks with metric %q\n", *baseline, *metric)
		os.Exit(2)
	}
	failed := false
	for _, d := range deltas {
		switch {
		case d.Missing:
			failed = true
			fmt.Printf("FAIL %-36s missing from current archive (baseline %.0f)\n", d.Name, d.Baseline)
		case d.Regressed:
			failed = true
			fmt.Printf("FAIL %-36s %s %.0f -> %.0f (%.2fx, tolerance %.0f%%)\n",
				d.Name, *metric, d.Baseline, d.Current, d.Ratio, *tolerance*100)
		default:
			fmt.Printf("ok   %-36s %s %.0f -> %.0f (%.2fx)\n",
				d.Name, *metric, d.Baseline, d.Current, d.Ratio)
		}
	}
	if failed {
		os.Exit(1)
	}
}
