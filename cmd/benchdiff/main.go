// Command benchdiff compares two benchjson archives (see
// internal/benchjson) on one metric and exits nonzero when the current
// numbers regress past the tolerance band. It is the comparison half of
// scripts/bench_compare.sh:
//
//	benchdiff -baseline BENCH_detect.json -current /tmp/detect.json \
//	    -metric logs_per_sec -tolerance 0.35
//	benchdiff -baseline BENCH_detect.json -current /tmp/detect.json \
//	    -metric allocs_per_record -direction lower -tolerance 0.35
//
// -direction says which way the metric improves: "higher" (throughput,
// the default) fails when current falls more than tolerance below
// baseline; "lower" (allocations, latency) fails when it rises more
// than tolerance above. Every benchmark in the baseline that carries
// the metric must be present in the current archive and within
// tolerance of its baseline value; extra benchmarks in the current
// archive are ignored.
package main

import (
	"flag"
	"fmt"
	"os"

	"intellog/internal/benchjson"
)

func main() {
	var (
		baseline  = flag.String("baseline", "", "committed benchjson archive (the reference)")
		current   = flag.String("current", "", "freshly generated benchjson archive")
		metric    = flag.String("metric", "logs_per_sec", "metric to compare")
		tolerance = flag.Float64("tolerance", 0.35, "allowed fractional drift toward worse before failing (0.35 = 35%)")
		direction = flag.String("direction", "higher", "which way the metric improves: higher | lower")
	)
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -current are required")
		os.Exit(2)
	}
	dir, err := benchjson.ParseDirection(*direction)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	base, err := benchjson.Load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := benchjson.Load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	deltas := benchjson.Compare(base, cur, *metric, *tolerance, dir)
	if len(deltas) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: baseline %s has no benchmarks with metric %q\n", *baseline, *metric)
		os.Exit(2)
	}
	failed := false
	for _, d := range deltas {
		switch {
		case d.Missing:
			failed = true
			fmt.Printf("FAIL %-36s missing from current archive (baseline %.6g)\n", d.Name, d.Baseline)
		case d.Regressed:
			failed = true
			fmt.Printf("FAIL %-36s %s %.6g -> %.6g (%.2fx, tolerance %.0f%%)\n",
				d.Name, *metric, d.Baseline, d.Current, d.Ratio, *tolerance*100)
		default:
			fmt.Printf("ok   %-36s %s %.6g -> %.6g (%.2fx)\n",
				d.Name, *metric, d.Baseline, d.Current, d.Ratio)
		}
	}
	if failed {
		os.Exit(1)
	}
}
