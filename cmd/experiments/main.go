// Command experiments regenerates every table and figure of the paper's
// evaluation (§6) on the simulated cluster and prints them in the paper's
// layout. Use -run to select one experiment, -train to set the training
// volume.
//
// Usage:
//
//	experiments                      # run everything
//	experiments -run table8          # one experiment
//	experiments -train 50 -seed 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"intellog/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "all", "all | "+strings.Join(experiments.RunNames, " | "))
		train = flag.Int("train", 20, "training jobs per system")
		seed  = flag.Int64("seed", 7, "random seed")
	)
	flag.Parse()

	opts := experiments.RunOptions{Run: *run, TrainJobs: *train, Seed: *seed}
	if err := experiments.Run(os.Stdout, opts); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
}
