// Command experiments regenerates every table and figure of the paper's
// evaluation (§6) on the simulated cluster and prints them in the paper's
// layout. Use -run to select one experiment, -train to set the training
// volume.
//
// Usage:
//
//	experiments                      # run everything
//	experiments -run table8          # one experiment
//	experiments -train 50 -seed 3
package main

import (
	"flag"
	"fmt"
	"os"

	"intellog/internal/experiments"
	"intellog/internal/logging"
)

func main() {
	var (
		run   = flag.String("run", "all", "all | table1 | figure1 | figure3 | figure4 | table4 | table5 | figure8 | figure9 | table6 | table7 | table8 | ablations | cloudseer | tensorflow")
		train = flag.Int("train", 20, "training jobs per system")
		seed  = flag.Int64("seed", 7, "random seed")
	)
	flag.Parse()

	env := experiments.NewEnv(*seed, *train)
	want := func(name string) bool { return *run == "all" || *run == name }
	ran := false

	if want("table1") {
		ran = true
		section("Table 1: natural-language log fractions")
		fmt.Print(experiments.FormatTable1(env.Table1(3)))
	}
	if want("figure1") {
		ran = true
		section("Figure 1: fetcher subroutine log keys")
		fmt.Print(experiments.Figure1())
	}
	if want("figure3") {
		ran = true
		section("Figure 3: POS tagging via sample message")
		fmt.Print(experiments.Figure3())
	}
	if want("figure4") {
		ran = true
		section("Figure 4: log key -> Intel Key")
		fmt.Print(experiments.FormatFigure4(experiments.Figure4()))
	}
	if want("table4") {
		ran = true
		section("Table 4: information-extraction accuracy (vs simulator ground truth)")
		var rows []experiments.ExtractionRow
		for _, fw := range experiments.Systems {
			rows = append(rows, env.Table4(fw))
		}
		fmt.Print(experiments.FormatTable4(rows))
	}
	if want("table5") {
		ran = true
		section("Table 5: log and HW-graph statistics")
		var rows []experiments.GraphStatsRow
		for _, fw := range experiments.Systems {
			rows = append(rows, env.Table5(fw))
		}
		fmt.Print(experiments.FormatTable5(rows))
	}
	if want("figure8") {
		ran = true
		section("Figure 8(a): Spark HW-graph (critical groups starred)")
		fmt.Print(env.Figure8())
		section("Figure 8(b): subroutines of the critical groups (operations; * = critical key)")
		fmt.Print(env.Figure8b())
	}
	if want("figure9") {
		ran = true
		section("Figure 9: Stitch S3 graph of Spark")
		fmt.Print(env.Figure9())
	}
	if want("table6") {
		ran = true
		section("Table 6: anomaly detection (30 jobs per system, 15 injected)")
		var rows []experiments.DetectionRow
		for _, fw := range experiments.Systems {
			row, _ := env.Table6(fw)
			rows = append(rows, row)
		}
		fmt.Print(experiments.FormatTable6(rows))
	}
	if want("table7") {
		ran = true
		section("Table 7: case studies")
		fmt.Print(env.CaseStudy1().Format())
		s, z := env.CaseStudy2()
		fmt.Print(s.Format())
		fmt.Print(z.Format())
		fmt.Print(env.CaseStudy3().Format())
	}
	if want("table8") {
		ran = true
		section("Table 8: anomaly-detection comparison")
		fmt.Print(experiments.FormatTable8(env.Table8()))
	}
	if want("ablations") {
		ran = true
		section("Ablations")
		pts := env.AblationSpellThreshold(logging.MapReduce, nil)
		lw := env.AblationLastWords(logging.Spark)
		ck := env.AblationCriticalKeys(logging.Spark, 6)
		dl := env.AblationDeepLogTopG(logging.Spark, nil)
		fmt.Print(experiments.FormatAblations(pts, lw, ck, dl))
	}
	if want("cloudseer") {
		ran = true
		section("CloudSeer automaton claim (§8 related work)")
		fmt.Print(env.CloudSeerExperiment().Format())
	}
	if want("tensorflow") {
		ran = true
		section("TensorFlow extension (§9 future work)")
		fmt.Print(env.TensorFlowExtension(*train / 2).Format())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "experiments: unknown -run %q\n", *run)
		os.Exit(2)
	}
}

func section(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}
