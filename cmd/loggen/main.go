// Command loggen generates simulated analytics-cluster log corpora: one
// raw log file per YARN container session (the unit IntelLog analyses),
// plus the YARN daemon log and a ground-truth manifest for scoring.
//
// Usage:
//
//	loggen -framework spark -jobs 3 -fault none -out ./logs
//	loggen -framework flink -jobs 4 -fault kill -hostile burst -out ./logs
//
// Frameworks: spark, mapreduce, tez, tensorflow, flink, hdfs, yarn-rm.
// Faults: none, kill, network, node, spill, idle-containers,
// slow-shutdown. With -hostile, the per-session streams are additionally
// interleaved into one aggregated stream, reshaped by the named hostile
// traffic profile (see internal/workload) and written to aggregated.log.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"intellog/internal/logging"
	"intellog/internal/sim"
	"intellog/internal/workload"
)

func main() {
	var (
		framework = flag.String("framework", "spark", "spark | mapreduce | tez | tensorflow | flink | hdfs | yarn-rm")
		jobs      = flag.Int("jobs", 3, "number of jobs to submit")
		fault     = flag.String("fault", "none", "fault to inject: none | kill | network | node | spill | idle-containers | slow-shutdown")
		hostile   = flag.String("hostile", "", workload.HostileFlagDoc)
		out       = flag.String("out", "logs", "output directory")
		seed      = flag.Int64("seed", 1, "random seed")
		nodes     = flag.Int("nodes", 26, "cluster worker nodes")
	)
	flag.Parse()

	fw, err := parseFramework(*framework)
	if err != nil {
		fatal(err)
	}
	fk, err := parseFault(*fault)
	if err != nil {
		fatal(err)
	}
	hp, err := parseHostile(*hostile)
	if err != nil {
		fatal(err)
	}
	if err := run(fw, fk, hp, *jobs, *out, *seed, *nodes); err != nil {
		fatal(err)
	}
}

func run(fw logging.Framework, fk sim.FaultKind, hp workload.HostileProfile, jobs int, out string, seed int64, nodes int) error {
	cluster := sim.NewCluster(nodes, seed)
	gen := workload.NewGenerator(cluster, seed+1)

	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	manifest := struct {
		Framework  string            `json:"framework"`
		Fault      string            `json:"fault"`
		Hostile    string            `json:"hostile,omitempty"`
		Jobs       int               `json:"jobs"`
		Sessions   int               `json:"sessions"`
		Affected   map[string]bool   `json:"affected"`
		Files      map[string]string `json:"files"`
		JobNames   []string          `json:"jobNames"`
		Aggregated string            `json:"aggregated,omitempty"`
	}{
		Framework: string(fw), Fault: fk.String(), Hostile: string(hp), Jobs: jobs,
		Affected: map[string]bool{}, Files: map[string]string{},
	}

	formatter := logging.FormatterFor(fw)
	var yarnLines []string
	var allRecs []logging.Record
	total := 0
	for i := 0; i < jobs; i++ {
		res := gen.Submit(fw, fk)
		manifest.JobNames = append(manifest.JobNames, res.Spec.Name)
		for sid := range res.Affected {
			manifest.Affected[sid] = true
		}
		for _, s := range res.Sessions {
			name := s.ID + ".log"
			var b strings.Builder
			for _, rec := range s.Records {
				b.WriteString(formatter.Render(rec))
				b.WriteByte('\n')
			}
			if err := os.WriteFile(filepath.Join(out, name), []byte(b.String()), 0o644); err != nil {
				return err
			}
			if hp != "" {
				for _, rec := range s.Records {
					rec.SessionID = s.ID
					rec.Framework = s.Framework
					allRecs = append(allRecs, rec)
				}
			}
			manifest.Files[s.ID] = name
			manifest.Sessions++
			total += s.Len()
		}
		yf := logging.FormatterFor(logging.Yarn)
		for _, rec := range res.YarnRecords {
			yarnLines = append(yarnLines, yf.Render(rec))
		}
	}
	if hp != "" {
		// Interleave by timestamp the way conformance.Spec.Generate does,
		// reshape with the hostile profile, and render the aggregated
		// stream — what a collector would see from a hostile tenant.
		sort.SliceStable(allRecs, func(i, j int) bool { return allRecs[i].Time.Before(allRecs[j].Time) })
		allRecs = workload.ApplyHostile(hp, allRecs, seed+3)
		var b strings.Builder
		for _, rec := range allRecs {
			b.WriteString(formatter.Render(rec))
			b.WriteByte('\n')
		}
		if err := os.WriteFile(filepath.Join(out, "aggregated.log"), []byte(b.String()), 0o644); err != nil {
			return err
		}
		manifest.Aggregated = "aggregated.log"
	}
	if err := os.WriteFile(filepath.Join(out, "yarn-daemon.log"),
		[]byte(strings.Join(yarnLines, "\n")+"\n"), 0o644); err != nil {
		return err
	}
	mf, err := os.Create(filepath.Join(out, "manifest.json"))
	if err != nil {
		return err
	}
	defer mf.Close()
	enc := json.NewEncoder(mf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(manifest); err != nil {
		return err
	}
	hostileNote := ""
	if hp != "" {
		hostileNote = fmt.Sprintf(", hostile=%s", hp)
	}
	fmt.Printf("wrote %d sessions (%d log messages) for %d %s jobs (fault=%s%s) to %s\n",
		manifest.Sessions, total, jobs, fw, fk, hostileNote, out)
	return nil
}

func parseFramework(s string) (logging.Framework, error) {
	switch strings.ToLower(s) {
	case "spark":
		return logging.Spark, nil
	case "mapreduce", "mr":
		return logging.MapReduce, nil
	case "tez":
		return logging.Tez, nil
	case "tensorflow", "tf":
		return logging.TensorFlow, nil
	case "flink":
		return logging.Flink, nil
	case "hdfs":
		return logging.HDFS, nil
	case "yarn-rm", "yarnrm":
		return logging.YarnRM, nil
	default:
		return "", fmt.Errorf("unknown framework %q (want spark, mapreduce, tez, tensorflow, flink, hdfs or yarn-rm)", s)
	}
}

func parseHostile(s string) (workload.HostileProfile, error) {
	if s == "" {
		return "", nil
	}
	hp := workload.HostileProfile(strings.ToLower(s))
	if !hp.Known() {
		return "", fmt.Errorf("unknown hostile profile %q (want one of %v)", s, workload.HostileProfiles())
	}
	return hp, nil
}

func parseFault(s string) (sim.FaultKind, error) {
	for fk := sim.FaultNone; fk <= sim.FaultSlowShutdown; fk++ {
		if fk.String() == strings.ToLower(s) {
			return fk, nil
		}
	}
	return sim.FaultNone, fmt.Errorf("unknown fault %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loggen:", err)
	os.Exit(1)
}
