// Command loggen generates simulated analytics-cluster log corpora: one
// raw log file per YARN container session (the unit IntelLog analyses),
// plus the YARN daemon log and a ground-truth manifest for scoring.
//
// Usage:
//
//	loggen -framework spark -jobs 3 -fault none -out ./logs
//
// Frameworks: spark, mapreduce, tez. Faults: none, kill, network, node,
// spill, idle-containers, slow-shutdown.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"intellog/internal/logging"
	"intellog/internal/sim"
	"intellog/internal/workload"
)

func main() {
	var (
		framework = flag.String("framework", "spark", "spark | mapreduce | tez")
		jobs      = flag.Int("jobs", 3, "number of jobs to submit")
		fault     = flag.String("fault", "none", "fault to inject: none | kill | network | node | spill | idle-containers | slow-shutdown")
		out       = flag.String("out", "logs", "output directory")
		seed      = flag.Int64("seed", 1, "random seed")
		nodes     = flag.Int("nodes", 26, "cluster worker nodes")
	)
	flag.Parse()

	fw, err := parseFramework(*framework)
	if err != nil {
		fatal(err)
	}
	fk, err := parseFault(*fault)
	if err != nil {
		fatal(err)
	}
	if err := run(fw, fk, *jobs, *out, *seed, *nodes); err != nil {
		fatal(err)
	}
}

func run(fw logging.Framework, fk sim.FaultKind, jobs int, out string, seed int64, nodes int) error {
	cluster := sim.NewCluster(nodes, seed)
	gen := workload.NewGenerator(cluster, seed+1)

	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	manifest := struct {
		Framework string            `json:"framework"`
		Fault     string            `json:"fault"`
		Jobs      int               `json:"jobs"`
		Sessions  int               `json:"sessions"`
		Affected  map[string]bool   `json:"affected"`
		Files     map[string]string `json:"files"`
		JobNames  []string          `json:"jobNames"`
	}{
		Framework: string(fw), Fault: fk.String(), Jobs: jobs,
		Affected: map[string]bool{}, Files: map[string]string{},
	}

	formatter := logging.FormatterFor(fw)
	var yarnLines []string
	total := 0
	for i := 0; i < jobs; i++ {
		res := gen.Submit(fw, fk)
		manifest.JobNames = append(manifest.JobNames, res.Spec.Name)
		for sid := range res.Affected {
			manifest.Affected[sid] = true
		}
		for _, s := range res.Sessions {
			name := s.ID + ".log"
			var b strings.Builder
			for _, rec := range s.Records {
				b.WriteString(formatter.Render(rec))
				b.WriteByte('\n')
			}
			if err := os.WriteFile(filepath.Join(out, name), []byte(b.String()), 0o644); err != nil {
				return err
			}
			manifest.Files[s.ID] = name
			manifest.Sessions++
			total += s.Len()
		}
		yf := logging.FormatterFor(logging.Yarn)
		for _, rec := range res.YarnRecords {
			yarnLines = append(yarnLines, yf.Render(rec))
		}
	}
	if err := os.WriteFile(filepath.Join(out, "yarn-daemon.log"),
		[]byte(strings.Join(yarnLines, "\n")+"\n"), 0o644); err != nil {
		return err
	}
	mf, err := os.Create(filepath.Join(out, "manifest.json"))
	if err != nil {
		return err
	}
	defer mf.Close()
	enc := json.NewEncoder(mf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(manifest); err != nil {
		return err
	}
	fmt.Printf("wrote %d sessions (%d log messages) for %d %s jobs (fault=%s) to %s\n",
		manifest.Sessions, total, jobs, fw, fk, out)
	return nil
}

func parseFramework(s string) (logging.Framework, error) {
	switch strings.ToLower(s) {
	case "spark":
		return logging.Spark, nil
	case "mapreduce", "mr":
		return logging.MapReduce, nil
	case "tez":
		return logging.Tez, nil
	case "tensorflow", "tf":
		return logging.TensorFlow, nil
	default:
		return "", fmt.Errorf("unknown framework %q (want spark, mapreduce, tez or tensorflow)", s)
	}
}

func parseFault(s string) (sim.FaultKind, error) {
	for fk := sim.FaultNone; fk <= sim.FaultSlowShutdown; fk++ {
		if fk.String() == strings.ToLower(s) {
			return fk, nil
		}
	}
	return sim.FaultNone, fmt.Errorf("unknown fault %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loggen:", err)
	os.Exit(1)
}
