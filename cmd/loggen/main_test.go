package main

// CLI-level tests for loggen: flag parsing across the full framework
// roster (including the new flink / hdfs / yarn-rm simulators), hostile
// profile validation error paths, and the run() output contract —
// per-session files + manifest, plus the aggregated hostile stream.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"intellog/internal/logging"
	"intellog/internal/sim"
	"intellog/internal/workload"
)

func TestParseFramework(t *testing.T) {
	good := map[string]logging.Framework{
		"spark":      logging.Spark,
		"mapreduce":  logging.MapReduce,
		"mr":         logging.MapReduce,
		"tez":        logging.Tez,
		"tensorflow": logging.TensorFlow,
		"tf":         logging.TensorFlow,
		"flink":      logging.Flink,
		"FLINK":      logging.Flink,
		"hdfs":       logging.HDFS,
		"yarn-rm":    logging.YarnRM,
		"yarnrm":     logging.YarnRM,
	}
	for in, want := range good {
		fw, err := parseFramework(in)
		if err != nil {
			t.Errorf("parseFramework(%q): %v", in, err)
		} else if fw != want {
			t.Errorf("parseFramework(%q) = %s, want %s", in, fw, want)
		}
	}
	for _, in := range []string{"hive", "yarn", "", "flinkk"} {
		if _, err := parseFramework(in); err == nil || !strings.Contains(err.Error(), "unknown framework") {
			t.Errorf("parseFramework(%q) = %v, want unknown-framework error", in, err)
		}
	}
}

func TestParseHostile(t *testing.T) {
	if hp, err := parseHostile(""); err != nil || hp != "" {
		t.Errorf("parseHostile(\"\") = %q, %v; want empty, nil", hp, err)
	}
	for _, p := range workload.HostileProfiles() {
		hp, err := parseHostile(string(p))
		if err != nil || hp != p {
			t.Errorf("parseHostile(%q) = %q, %v", p, hp, err)
		}
	}
	if hp, err := parseHostile("BURST"); err != nil || hp != workload.HostileBurst {
		t.Errorf("parseHostile(\"BURST\") = %q, %v; case folding broken", hp, err)
	}
	for _, in := range []string{"flood", "skewww", "burst,skew"} {
		if _, err := parseHostile(in); err == nil || !strings.Contains(err.Error(), "unknown hostile profile") {
			t.Errorf("parseHostile(%q) = %v, want unknown-profile error", in, err)
		}
	}
}

type manifest struct {
	Framework  string            `json:"framework"`
	Fault      string            `json:"fault"`
	Hostile    string            `json:"hostile"`
	Jobs       int               `json:"jobs"`
	Sessions   int               `json:"sessions"`
	Affected   map[string]bool   `json:"affected"`
	Files      map[string]string `json:"files"`
	Aggregated string            `json:"aggregated"`
}

func readManifest(t *testing.T, dir string) manifest {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRunNewFrameworks drives run() end to end for each new simulator:
// session files must exist, parse back under the framework's formatter,
// and the fault-affected ground truth must be non-empty on a kill run.
func TestRunNewFrameworks(t *testing.T) {
	for _, fw := range []logging.Framework{logging.Flink, logging.HDFS, logging.YarnRM} {
		fw := fw
		t.Run(string(fw), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			if err := run(fw, sim.FaultKill, "", 2, dir, 11, 8); err != nil {
				t.Fatalf("run: %v", err)
			}
			m := readManifest(t, dir)
			if m.Framework != string(fw) || m.Sessions == 0 {
				t.Fatalf("manifest: framework=%q sessions=%d", m.Framework, m.Sessions)
			}
			if len(m.Affected) == 0 {
				t.Fatalf("kill run produced no fault-affected sessions for %s", fw)
			}
			if m.Aggregated != "" {
				t.Fatalf("non-hostile run wrote aggregated stream %q", m.Aggregated)
			}
			formatter := logging.FormatterFor(fw)
			for sid, name := range m.Files {
				data, err := os.ReadFile(filepath.Join(dir, name))
				if err != nil {
					t.Fatal(err)
				}
				recs := logging.ParseLinesBytes(formatter, data)
				if len(recs) == 0 {
					t.Fatalf("session file %s for %s parses to no records", name, sid)
				}
			}
		})
	}
}

// TestRunHostileAggregated: a hostile run writes the reshaped aggregated
// stream next to the session files, deterministically per seed.
func TestRunHostileAggregated(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	for _, dir := range []string{dirA, dirB} {
		if err := run(logging.Spark, sim.FaultNone, workload.HostileBurst, 2, dir, 21, 8); err != nil {
			t.Fatalf("run: %v", err)
		}
	}
	m := readManifest(t, dirA)
	if m.Hostile != string(workload.HostileBurst) || m.Aggregated != "aggregated.log" {
		t.Fatalf("manifest hostile=%q aggregated=%q", m.Hostile, m.Aggregated)
	}
	a, err := os.ReadFile(filepath.Join(dirA, "aggregated.log"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dirB, "aggregated.log"))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("aggregated hostile stream differs across identical runs")
	}
	recs := logging.ParseLinesBytes(logging.FormatterFor(logging.Spark), a)
	if len(recs) == 0 {
		t.Fatal("aggregated.log parses to no records")
	}
	// The per-session line count must survive the reshaping: burst is
	// time-only, so the aggregated stream carries every session record.
	perSession := 0
	for _, name := range m.Files {
		data, err := os.ReadFile(filepath.Join(dirA, name))
		if err != nil {
			t.Fatal(err)
		}
		perSession += len(logging.ParseLinesBytes(logging.FormatterFor(logging.Spark), data))
	}
	if len(recs) != perSession {
		t.Fatalf("aggregated stream has %d records, session files hold %d", len(recs), perSession)
	}
}
