package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"intellog/internal/analytics"
)

// cmdAnalyze runs the offline analytics pass: detect anomalies in a log
// set, cluster the near-duplicates, localize each cluster's root cause
// on the HW-graph, and roll counts up into SLO windows — the batch
// counterpart of intellogd's /v1/anomalies/clusters and /v1/rollups.
func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	framework := fs.String("framework", "spark", "spark | mapreduce | tez | tensorflow | flink | hdfs | yarn-rm")
	logs := fs.String("logs", "", "directory of session logs to analyze")
	aggregated := fs.String("aggregated", "", "single aggregated log file (sessionized by container ID)")
	model := fs.String("model", "model.json", "trained model file")
	threshold := fs.Float64("threshold", 0, "cluster cosine similarity threshold (0 = default 0.60)")
	window := fs.Duration("window", 0, "rollup bucket width (0 = default 1m)")
	budget := fs.Float64("budget", 0, "anomaly budget per window for burn-rate alerts (0 = default 10)")
	top := fs.Int("top", 20, "clusters to print (by anomaly count; <=0 all)")
	asJSON := fs.Bool("json", false, "dump the full snapshot as JSON")
	fs.Parse(args)

	fw, err := parseFramework(*framework)
	if err != nil {
		return err
	}
	m, err := loadModel(*model)
	if err != nil {
		return err
	}
	sessions, err := loadInput(fw, *logs, *aggregated)
	if err != nil {
		return err
	}
	report := m.Detect(sessions)
	engine := analytics.NewEngine(analytics.Config{
		Threshold: *threshold,
		Window:    *window,
		Budget:    *budget,
	}, m.Graph)
	engine.ObserveBatch(report.Anomalies)
	snap := engine.Snapshot()

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		return enc.Encode(snap)
	}

	fmt.Printf("analyzed %d sessions: %d anomalies, %d shapes, %d clusters\n",
		len(sessions), snap.Observed, snap.Shapes, len(snap.Clusters))

	// Biggest clusters first; ID breaks count ties so output is stable.
	clusters := append([]analytics.Cluster(nil), snap.Clusters...)
	for i := 1; i < len(clusters); i++ {
		for j := i; j > 0 && (clusters[j].Count > clusters[j-1].Count ||
			(clusters[j].Count == clusters[j-1].Count && clusters[j].ID < clusters[j-1].ID)); j-- {
			clusters[j], clusters[j-1] = clusters[j-1], clusters[j]
		}
	}
	shown := len(clusters)
	if *top > 0 && shown > *top {
		shown = *top
	}
	for _, c := range clusters[:shown] {
		fmt.Printf("\ncluster %d: %d anomalies, %d sessions, %d shapes\n", c.ID, c.Count, c.Sessions, c.Shapes)
		fmt.Printf("  label: %s\n", c.Label)
		if c.Sample != "" {
			fmt.Printf("  sample: %s\n", c.Sample)
		}
		if e := c.Explanation; e != nil {
			var hops []string
			for _, st := range e.Path {
				hops = append(hops, st.Group)
			}
			fmt.Printf("  root cause: %s (path %s)\n", e.RootCause, strings.Join(hops, " -> "))
		}
	}
	if shown < len(clusters) {
		fmt.Printf("\n(%d more clusters; raise -top or use -json)\n", len(clusters)-shown)
	}

	if len(snap.Rollup.Buckets) > 0 {
		fmt.Printf("\nrollup (window %s, budget %g):\n", snap.Rollup.Window, snap.Rollup.Budget)
		for _, b := range snap.Rollup.Buckets {
			fmt.Printf("  %s  total=%d sessions=%d\n", b.Start.Format(time.RFC3339), b.Total, b.Sessions)
		}
		for _, a := range snap.Rollup.Alerts {
			state := "ok"
			if a.Firing {
				state = "FIRING"
			}
			fmt.Printf("  alert %s: burn=%.2f threshold=%.2f %s\n", a.Name, a.BurnRate, a.Threshold, state)
		}
	}
	return nil
}
