package main

import (
	"flag"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"intellog/internal/benchjson"
	"intellog/internal/logging"
	"intellog/internal/server"
)

// cmdBenchServe replays a log corpus against a running intellogd over
// HTTP and reports throughput and latency percentiles — the serving
// analogue of the offline bench harness, and the load generator of the
// CI serve-smoke job.
func cmdBenchServe(args []string) error {
	fs := flag.NewFlagSet("bench-serve", flag.ExitOnError)
	var (
		serverURL   = fs.String("server", "http://127.0.0.1:7171", "intellogd base URL")
		proto       = fs.String("proto", "ndjson", "ingest protocol: ndjson (HTTP) | stream (binary)")
		streamAddr  = fs.String("stream-addr", "127.0.0.1:7172", "binary protocol address (with -proto=stream)")
		window      = fs.Int("window", 4, "pipelined frames per connection (with -proto=stream)")
		tenant      = fs.String("tenant", "default", "tenant to ingest as")
		framework   = fs.String("framework", "spark", "spark | mapreduce | tez")
		logs        = fs.String("logs", "", "directory of per-session .log files to replay")
		aggregated  = fs.String("aggregated", "", "single aggregated log file to replay (alternative to -logs)")
		batch       = fs.Int("batch", 256, "records per ingest request")
		concurrency = fs.Int("concurrency", 4, "parallel sender workers (sessions sharded across them)")
		wait        = fs.Duration("wait", 0, "wait up to this long for the server to become ready")
		noFlush     = fs.Bool("no-flush", false, "skip the final flush (leave sessions in flight)")
		benchJSON   = fs.String("bench-json", "", "merge results into this benchjson archive")
		checkMetric = fs.Bool("check-metrics", false, "scrape /metrics afterwards and fail if serving series are missing")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*logs == "") == (*aggregated == "") {
		return fmt.Errorf("bench-serve: exactly one of -logs or -aggregated is required")
	}

	fw := logging.Framework(*framework)
	sessions, err := loadInput(fw, *logs, *aggregated)
	if err != nil {
		return err
	}
	// Interleave sessions by timestamp — the shape of a live aggregated
	// stream, and what the ingest path is built for.
	var recs []logging.Record
	for _, s := range sessions {
		recs = append(recs, s.Records...)
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time.Before(recs[j].Time) })

	c := &server.Client{Base: strings.TrimRight(*serverURL, "/"), Tenant: *tenant}
	if *wait > 0 {
		if err := c.WaitReady(*wait); err != nil {
			return err
		}
	}

	// Snapshot the daemon's allocation counter before the replay so the
	// delta afterwards is (approximately) this replay's allocations. On a
	// bench box the daemon serves only this client, so the attribution is
	// clean; against a shared daemon the number includes whatever else it
	// was doing.
	preMallocs, preOK := scrapeMetric(c, "intellogd_mallocs_total")

	var res server.ReplayResult
	switch *proto {
	case "ndjson":
		res, err = c.Replay(recs, server.ReplayOptions{Batch: *batch, Concurrency: *concurrency})
	case "stream":
		res, err = c.ReplayStream(*streamAddr, recs, server.StreamReplayOptions{
			Batch: *batch, Concurrency: *concurrency, Window: *window})
	default:
		return fmt.Errorf("bench-serve: unknown -proto %q (want ndjson or stream)", *proto)
	}
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	fmt.Printf("bench-serve: tenant=%s proto=%s records=%d batches=%d rejected=%d\n",
		*tenant, *proto, res.Records, res.Batches, res.Rejected)
	fmt.Printf("bench-serve: wall=%s throughput=%.0f rec/s p50=%s p99=%s\n",
		res.Duration.Round(time.Millisecond), res.RecPerSec, res.P50.Round(time.Microsecond), res.P99.Round(time.Microsecond))

	// GC-pressure readout: allocations per ingested record (from the
	// daemon's malloc counter delta) and the runtime's cumulative GC CPU
	// fraction. Best-effort — an older daemon without the series just
	// skips these numbers.
	allocsPerRecord, gcFraction := -1.0, -1.0
	if postMallocs, ok := scrapeMetric(c, "intellogd_mallocs_total"); ok && preOK && res.Records > 0 {
		allocsPerRecord = (postMallocs - preMallocs) / float64(res.Records)
	}
	if f, ok := scrapeMetric(c, "intellogd_gc_cpu_fraction"); ok {
		gcFraction = f
	}
	if allocsPerRecord >= 0 || gcFraction >= 0 {
		fmt.Printf("bench-serve: allocs/record=%.1f gc_cpu_fraction=%.4f\n",
			allocsPerRecord, gcFraction)
	}

	if !*noFlush {
		fl, err := c.Flush()
		if err != nil {
			return fmt.Errorf("flush: %w", err)
		}
		rep, err := c.Report()
		if err != nil {
			return fmt.Errorf("report: %w", err)
		}
		fmt.Printf("bench-serve: sessions=%d anomalies=%d (flush emitted %d)\n",
			rep.Sessions, len(rep.Anomalies), fl.Findings)
	}

	if *checkMetric {
		text, err := c.Metrics()
		if err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		for _, series := range []string{
			"intellogd_ingest_records_total",
			"intellogd_pending_sessions",
			"intellogd_anomaly_log_size",
			"intellogd_resident_tenants",
		} {
			if !strings.Contains(text, series) {
				return fmt.Errorf("metrics: scrape is missing series %s", series)
			}
		}
		fmt.Println("bench-serve: metrics scrape ok")
	}

	if *benchJSON != "" {
		key := "serve_replay_" + *framework
		if *proto == "stream" {
			key = "serve_replay_stream_" + *framework
		}
		metrics := map[string]float64{
			"records":       float64(res.Records),
			"batches":       float64(res.Batches),
			"rejected":      float64(res.Rejected),
			"wall_seconds":  res.Duration.Seconds(),
			"records_per_s": res.RecPerSec,
			"p50_ms":        float64(res.P50) / float64(time.Millisecond),
			"p99_ms":        float64(res.P99) / float64(time.Millisecond),
			"concurrency":   float64(*concurrency),
			"batch_records": float64(*batch),
		}
		if allocsPerRecord >= 0 {
			metrics["allocs_per_record"] = allocsPerRecord
		}
		if gcFraction >= 0 {
			metrics["gc_cpu_fraction"] = gcFraction
		}
		if err := benchjson.Merge(*benchJSON, key, metrics); err != nil {
			return fmt.Errorf("bench-json: %w", err)
		}
		fmt.Printf("bench-serve: archived to %s\n", *benchJSON)
	}
	return nil
}

// scrapeMetric fetches the daemon's /metrics exposition and returns the
// value of the unlabeled series name. Best-effort: any scrape or parse
// failure reports ok=false and the caller skips the derived number.
func scrapeMetric(c *server.Client, name string) (float64, bool) {
	text, err := c.Metrics()
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, name)
		if !ok || len(rest) == 0 || (rest[0] != ' ' && rest[0] != '\t') {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}
