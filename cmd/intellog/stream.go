package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"intellog/internal/core"
	"intellog/internal/detect"
	"intellog/internal/logging"
	"intellog/internal/sim"
)

// cmdStream is the online mode of Fig. 2: consume an aggregated log
// stream line by line, sessionize incrementally, report anomalies as they
// are found, and finalize whatever is still in flight at EOF. Optional
// flags bound memory (idle timeout, session/message caps), checkpoint the
// detector so a restart resumes mid-stream, and fault-inject the input to
// exercise robustness end to end.
// validateStreamFlags rejects flag combinations the rest of cmdStream
// would otherwise misread silently: out-of-range fault probabilities, a
// fault seed with no fault enabled, or a checkpoint cadence with nowhere
// to write checkpoints.
func validateStreamFlags(fs *flag.FlagSet, truncate, corrupt, dup float64, reorder int, checkpoint string, every int) error {
	probs := []struct {
		name string
		val  float64
	}{
		{"-fault-truncate", truncate},
		{"-fault-corrupt", corrupt},
		{"-fault-dup", dup},
	}
	for _, p := range probs {
		if p.val < 0 || p.val > 1 {
			return fmt.Errorf("%s = %v: probability must be in [0, 1]", p.name, p.val)
		}
	}
	if reorder < 0 {
		return fmt.Errorf("-fault-reorder = %d: window must be >= 0", reorder)
	}
	if every < 0 {
		return fmt.Errorf("-checkpoint-every = %d: must be >= 0 (0 disables periodic writes)", every)
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	anyFault := truncate > 0 || corrupt > 0 || dup > 0 || reorder > 0
	if set["fault-seed"] && !anyFault {
		return fmt.Errorf("-fault-seed set but no fault enabled; set at least one of -fault-truncate, -fault-corrupt, -fault-dup, -fault-reorder")
	}
	if set["checkpoint-every"] && checkpoint == "" {
		return fmt.Errorf("-checkpoint-every set without -checkpoint")
	}
	return nil
}

func cmdStream(args []string) error {
	fs := flag.NewFlagSet("stream", flag.ExitOnError)
	framework := fs.String("framework", "spark", "spark | mapreduce | tez | tensorflow | flink | hdfs | yarn-rm")
	input := fs.String("input", "", "aggregated log file to stream ('-' or empty = stdin)")
	model := fs.String("model", "model.json", "trained model file")
	idle := fs.Duration("idle", 0, "finalize a session when its log time falls this far behind the stream (0 = only at EOF)")
	maxSessions := fs.Int("max-sessions", 0, "max in-flight sessions; the longest-idle is force-closed beyond this (0 = unbounded)")
	maxMsgs := fs.Int("max-msgs", 0, "max buffered messages per session; further ones are dropped with an overflow finding (0 = unbounded)")
	checkpoint := fs.String("checkpoint", "", "checkpoint file: resumed from if present, rewritten every -checkpoint-every records")
	checkpointEvery := fs.Int("checkpoint-every", 10000, "records between checkpoint writes (with -checkpoint)")
	summaryOnly := fs.Bool("summary-only", false, "suppress per-anomaly lines, print only the final summary")
	faultSeed := fs.Int64("fault-seed", 1, "fault-injection RNG seed")
	faultTruncate := fs.Float64("fault-truncate", 0, "probability a line is truncated mid-byte ("+sim.FaultFlagsDoc+")")
	faultCorrupt := fs.Float64("fault-corrupt", 0, "probability a line gets random bytes corrupted ("+sim.FaultFlagsDoc+")")
	faultDup := fs.Float64("fault-dup", 0, "probability a line is duplicated ("+sim.FaultFlagsDoc+")")
	faultReorder := fs.Int("fault-reorder", 0, "bounded reordering window in lines (0 disables)")
	fs.Parse(args)

	fw, err := parseFramework(*framework)
	if err != nil {
		return err
	}
	if err := validateStreamFlags(fs, *faultTruncate, *faultCorrupt, *faultDup,
		*faultReorder, *checkpoint, *checkpointEvery); err != nil {
		return err
	}
	cfg := detect.StreamConfig{
		IdleTimeout:    *idle,
		MaxSessions:    *maxSessions,
		MaxSessionMsgs: *maxMsgs,
	}

	// Resume from a checkpoint when one exists; otherwise start fresh from
	// the trained model.
	var (
		m           *core.Model
		sd          *detect.StreamDetector
		sticky      string // sessionizer state recovered from the checkpoint
		lastTouched time.Time
		cursor      int64 // raw input lines the checkpointed run already consumed
	)
	if *checkpoint != "" {
		if f, err := os.Open(*checkpoint); err == nil {
			var st *detect.StreamState
			m, st, cursor, err = core.LoadCheckpointAt(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("resume %s: %w", *checkpoint, err)
			}
			sd, err = m.RestoreStream(cfg, st)
			if err != nil {
				return fmt.Errorf("resume %s: %w", *checkpoint, err)
			}
			// Resume the sessionizer where ID-less records were sticking
			// at the cut. Newer checkpoints record it exactly; for older
			// ones fall back to the session touched last before the cut.
			sticky = st.Sticky
			if sticky == "" {
				for _, sess := range st.Sessions {
					if sticky == "" || sess.Last.After(lastTouched) {
						sticky, lastTouched = sess.ID, sess.Last
					}
				}
			}
			fmt.Printf("resumed from %s: %d in-flight sessions, %d seen, fast-forwarding %d lines\n",
				*checkpoint, sd.Pending(), sd.SessionsSeen(), cursor)
		}
	}
	if sd == nil {
		if m, err = loadModel(*model); err != nil {
			return err
		}
		sd = detect.NewStream(m.Detector(), cfg)
	}

	var in io.Reader = os.Stdin
	if *input != "" && *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	var injector *sim.FaultInjector
	if *faultTruncate > 0 || *faultCorrupt > 0 || *faultDup > 0 || *faultReorder > 0 {
		injector = sim.NewFaultInjector(*faultSeed)
		injector.TruncateProb = *faultTruncate
		injector.CorruptProb = *faultCorrupt
		injector.DuplicateProb = *faultDup
		injector.ReorderWindow = *faultReorder
		fmt.Printf("fault injection: %s (seed %d)\n", injector.DescribeFaults(), *faultSeed)
	}

	formatter := logging.FormatterFor(fw)
	assigner := logging.SessionAssigner{}
	assigner.Resume(sticky)
	findings := 0
	emit := func(anomalies []detect.Anomaly) {
		findings += len(anomalies)
		if *summaryOnly {
			return
		}
		for _, a := range anomalies {
			switch a.Kind {
			case detect.UnexpectedMessage:
				fmt.Printf("  [%s] %s (group %q): %s\n", a.Session, a.Kind, a.Group, a.Record.Message)
			default:
				fmt.Printf("  [%s] %s: %s\n", a.Session, a.Kind, a.Detail)
			}
		}
	}
	saveCheckpoint := func(at int64) error {
		tmp := *checkpoint + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		st := sd.State()
		st.Sticky = assigner.Current()
		if err := core.SaveCheckpointAt(f, m, st, at); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		return os.Rename(tmp, *checkpoint)
	}

	lines, skipped, consumed := 0, 0, 0
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 0, 1<<16), 1<<20)
	consumeLine := func(line string) error {
		lines++
		// A resumed run fast-forwards past input the checkpointed run
		// already consumed (assumes the same input stream from the start).
		if int64(lines) <= cursor {
			return nil
		}
		rec, ok := formatter.Parse(line)
		if !ok || !assigner.Assign(&rec) {
			// Unparsable (corrupt/truncated/continuation) or pre-session
			// chatter: robustness means skipping, not failing.
			skipped++
			return nil
		}
		emit(sd.Consume(rec))
		consumed++
		if *checkpoint != "" && *checkpointEvery > 0 && consumed%*checkpointEvery == 0 {
			return saveCheckpoint(int64(lines))
		}
		return nil
	}
	if injector != nil {
		// Reordering needs a window of lines; the corpus is read first and
		// perturbed as a whole, then streamed through the detector.
		var raw []string
		for scanner.Scan() {
			raw = append(raw, scanner.Text())
		}
		for _, line := range injector.PerturbLines(raw) {
			if err := consumeLine(line); err != nil {
				return err
			}
		}
	} else {
		for scanner.Scan() {
			if err := consumeLine(scanner.Text()); err != nil {
				return err
			}
		}
	}
	if err := scanner.Err(); err != nil {
		return err
	}

	report := sd.Flush()
	emit(report.Anomalies)
	if *checkpoint != "" {
		// Clean EOF: everything is flushed and reported, so the bookmark
		// resets — a follow-up invocation (e.g. the next rotated file)
		// starts from the top of its own input.
		if err := saveCheckpoint(0); err != nil {
			return err
		}
	}
	fmt.Printf("streamed %d lines (%d consumed, %d skipped) in %d sessions: %d findings\n",
		lines, consumed, skipped, report.Sessions, findings)
	fmt.Print(report.Summary())
	return nil
}
