package main

// CLI-level tests: flag validation, input-loading error paths, and the
// checkpoint-resume mismatch message. The subcommands are exercised
// through their cmdX entry points exactly as main dispatches them, over
// corpora rendered to disk the same way cmd/loggen writes them.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"intellog/internal/core"
	"intellog/internal/detect"
	"intellog/internal/logging"
	"intellog/internal/sim"
	"intellog/internal/workload"
)

// writeLogDir renders clean training sessions into dir, one .log file per
// session (the layout loadSessions expects), and returns the sessions.
func writeLogDir(t *testing.T, dir string, n int) []*logging.Session {
	t.Helper()
	g := workload.NewGenerator(sim.NewCluster(10, 71), 72)
	sessions := g.TrainingCorpus(logging.Spark, n)
	f := logging.FormatterFor(logging.Spark)
	for _, s := range sessions {
		var b strings.Builder
		for _, r := range s.Records {
			b.WriteString(f.Render(r))
			b.WriteByte('\n')
		}
		if err := os.WriteFile(filepath.Join(dir, s.ID+".log"), []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return sessions
}

// writeAggregated renders sessions back-to-back into one file, the
// aggregated-stream layout cmdStream sessionizes on the fly.
func writeAggregated(t *testing.T, path string, sessions []*logging.Session) {
	t.Helper()
	f := logging.FormatterFor(logging.Spark)
	var b strings.Builder
	for _, s := range sessions {
		for _, r := range s.Records {
			b.WriteString(f.Render(r))
			b.WriteByte('\n')
		}
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestTrainDetectStreamRoundTrip(t *testing.T) {
	dir := t.TempDir()
	logs := filepath.Join(dir, "logs")
	if err := os.Mkdir(logs, 0o755); err != nil {
		t.Fatal(err)
	}
	sessions := writeLogDir(t, logs, 2)
	model := filepath.Join(dir, "model.json")

	if err := cmdTrain([]string{"-framework", "spark", "-logs", logs, "-model", model}); err != nil {
		t.Fatalf("train: %v", err)
	}
	if err := cmdDetect([]string{"-framework", "spark", "-logs", logs, "-model", model}); err != nil {
		t.Fatalf("detect: %v", err)
	}

	agg := filepath.Join(dir, "agg.log")
	writeAggregated(t, agg, sessions)
	ckpt := filepath.Join(dir, "ckpt.json")
	err := cmdStream([]string{"-framework", "spark", "-model", model,
		"-input", agg, "-summary-only", "-checkpoint", ckpt, "-checkpoint-every", "50"})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("stream left no checkpoint: %v", err)
	}
	if err := cmdGraph([]string{"-model", model}); err != nil {
		t.Fatalf("graph: %v", err)
	}
	if err := cmdKeys([]string{"-model", model}); err != nil {
		t.Fatalf("keys: %v", err)
	}
	if err := cmdQuery([]string{"-framework", "spark", "-logs", logs, "-model", model, "-groupby", "TASK"}); err != nil {
		t.Fatalf("query: %v", err)
	}
}

// TestParseFrameworkRoster pins the CLI's framework vocabulary,
// including the flink / hdfs / yarn-rm simulators.
func TestParseFrameworkRoster(t *testing.T) {
	good := map[string]logging.Framework{
		"spark":      logging.Spark,
		"mapreduce":  logging.MapReduce,
		"mr":         logging.MapReduce,
		"tez":        logging.Tez,
		"tensorflow": logging.TensorFlow,
		"tf":         logging.TensorFlow,
		"flink":      logging.Flink,
		"hdfs":       logging.HDFS,
		"HDFS":       logging.HDFS,
		"yarn-rm":    logging.YarnRM,
		"yarnrm":     logging.YarnRM,
	}
	for in, want := range good {
		fw, err := parseFramework(in)
		if err != nil {
			t.Errorf("parseFramework(%q): %v", in, err)
		} else if fw != want {
			t.Errorf("parseFramework(%q) = %s, want %s", in, fw, want)
		}
	}
	for _, in := range []string{"hive", "yarn", "", "hdfs2"} {
		if _, err := parseFramework(in); err == nil || !strings.Contains(err.Error(), "unknown framework") {
			t.Errorf("parseFramework(%q) = %v, want unknown-framework error", in, err)
		}
	}
}

// TestTrainDetectNewFramework proves the CLI path works end to end for a
// new simulator: render a flink corpus to disk the way loggen does,
// train on it, and detect over it with -framework flink.
func TestTrainDetectNewFramework(t *testing.T) {
	dir := t.TempDir()
	logs := filepath.Join(dir, "logs")
	if err := os.Mkdir(logs, 0o755); err != nil {
		t.Fatal(err)
	}
	g := workload.NewGenerator(sim.NewCluster(10, 73), 74)
	sessions := g.TrainingCorpus(logging.Flink, 3)
	f := logging.FormatterFor(logging.Flink)
	for _, s := range sessions {
		var b strings.Builder
		for _, r := range s.Records {
			b.WriteString(f.Render(r))
			b.WriteByte('\n')
		}
		if err := os.WriteFile(filepath.Join(logs, s.ID+".log"), []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	model := filepath.Join(dir, "model.json")
	if err := cmdTrain([]string{"-framework", "flink", "-logs", logs, "-model", model}); err != nil {
		t.Fatalf("train: %v", err)
	}
	if err := cmdDetect([]string{"-framework", "flink", "-logs", logs, "-model", model}); err != nil {
		t.Fatalf("detect: %v", err)
	}
}

func TestBadCorpusPaths(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty")
	if err := os.Mkdir(empty, 0o755); err != nil {
		t.Fatal(err)
	}
	model := filepath.Join(dir, "model.json")

	err := cmdTrain([]string{"-framework", "spark", "-logs", filepath.Join(dir, "missing"), "-model", model})
	if err == nil {
		t.Fatal("train on missing dir succeeded")
	}
	err = cmdTrain([]string{"-framework", "spark", "-logs", empty, "-model", model})
	if err == nil || !strings.Contains(err.Error(), "no sessions found in") {
		t.Fatalf("train on empty dir: %v, want 'no sessions found in'", err)
	}

	blank := filepath.Join(dir, "blank.log")
	if err := os.WriteFile(blank, []byte("\n\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = cmdTrain([]string{"-framework", "spark", "-aggregated", blank, "-model", model})
	if err == nil || !strings.Contains(err.Error(), "no sessions found in aggregated log") {
		t.Fatalf("train on blank aggregated log: %v, want 'no sessions found in aggregated log'", err)
	}

	if err := cmdTrain([]string{"-framework", "hive", "-logs", empty}); err == nil ||
		!strings.Contains(err.Error(), "unknown framework") {
		t.Fatalf("unknown framework: %v", err)
	}
}

func TestStreamFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"truncate above 1", []string{"-fault-truncate", "1.5"}, "probability must be in [0, 1]"},
		{"negative corrupt", []string{"-fault-corrupt", "-0.1"}, "probability must be in [0, 1]"},
		{"dup above 1", []string{"-fault-dup", "2"}, "probability must be in [0, 1]"},
		{"negative reorder", []string{"-fault-reorder", "-3"}, "window must be >= 0"},
		{"negative cadence", []string{"-checkpoint", "c.json", "-checkpoint-every", "-1"}, "must be >= 0"},
		{"seed without fault", []string{"-fault-seed", "9"}, "no fault enabled"},
		{"cadence without checkpoint", []string{"-checkpoint-every", "100"}, "-checkpoint-every set without -checkpoint"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := cmdStream(tc.args)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("cmdStream(%v) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestStreamCheckpointModelMismatch(t *testing.T) {
	dir := t.TempDir()
	logs := filepath.Join(dir, "logs")
	if err := os.Mkdir(logs, 0o755); err != nil {
		t.Fatal(err)
	}
	sessions := writeLogDir(t, logs, 2)
	m := core.Train(sessions, core.Config{})

	// A checkpoint whose buffered record cannot bind under the stored
	// model — what a checkpoint written against a different model looks
	// like at restore time.
	t0 := time.Date(2019, 3, 2, 10, 0, 0, 0, time.UTC)
	st := &detect.StreamState{
		Seen: 1, NextSeq: 1,
		Latest: t0,
		Sessions: []detect.SessionState{{
			ID: "container_ghost", Framework: logging.Spark,
			First: t0, Last: t0,
			Records: []detect.StampedMessage{{Time: t0, Message: "zzzz never-trained gibberish qqqq"}},
		}},
	}
	ckpt := filepath.Join(dir, "mismatch.json")
	f, err := os.Create(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.SaveCheckpointAt(f, m, st, 3); err != nil {
		t.Fatal(err)
	}
	f.Close()

	err = cmdStream([]string{"-framework", "spark", "-checkpoint", ckpt, "-input", filepath.Join(dir, "none.log")})
	if err == nil || !strings.Contains(err.Error(), "checkpoint/model mismatch") {
		t.Fatalf("resume from mismatched checkpoint: %v, want 'checkpoint/model mismatch'", err)
	}
	if !strings.Contains(err.Error(), "resume "+ckpt) {
		t.Fatalf("error does not name the checkpoint: %v", err)
	}
}
