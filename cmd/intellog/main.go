// Command intellog is the IntelLog CLI: train a model from normal-run log
// directories, detect anomalies in new logs, render the HW-graph, and
// query Intel Messages.
//
// Usage:
//
//	intellog train  -framework spark -logs ./train-logs -model model.json
//	intellog detect -framework spark -logs ./new-logs   -model model.json
//	intellog analyze -framework spark -logs ./new-logs  -model model.json
//	intellog graph  -model model.json
//	intellog query  -framework spark -logs ./new-logs -model model.json -entity fetcher -groupby FETCHER
//
// Log directories hold one file per YARN container session (as written by
// loggen or collected from a cluster); the file name (minus .log) is the
// session ID.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"intellog/internal/core"
	"intellog/internal/detect"
	"intellog/internal/intelstore"
	"intellog/internal/logging"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "train":
		err = cmdTrain(args)
	case "detect":
		err = cmdDetect(args)
	case "analyze":
		err = cmdAnalyze(args)
	case "stream":
		err = cmdStream(args)
	case "bench-serve":
		err = cmdBenchServe(args)
	case "graph":
		err = cmdGraph(args)
	case "keys":
		err = cmdKeys(args)
	case "query":
		err = cmdQuery(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "intellog:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: intellog <train|detect|analyze|stream|bench-serve|graph|query> [flags]
  train  -framework F -logs DIR -model FILE [-threshold 1.7]
  detect -framework F -logs DIR -model FILE
  analyze -framework F -logs DIR -model FILE [-threshold T] [-window D] [-budget B] [-top N] [-json]
  stream -framework F -model FILE [-input FILE] [-idle D] [-max-sessions N] [-max-msgs N]
         [-checkpoint FILE [-checkpoint-every N]] [-fault-seed S -fault-truncate P
          -fault-corrupt P -fault-dup P -fault-reorder K] [-summary-only]
  bench-serve -server URL -tenant T -framework F (-logs DIR | -aggregated FILE)
         [-batch N] [-concurrency N] [-wait D] [-no-flush] [-bench-json FILE] [-check-metrics]
  graph  -model FILE
  keys   -model FILE [-entity E]
  query  -framework F -logs DIR -model FILE [-entity E] [-groupby TYPE] [-locality CLASS] [-json]`)
	os.Exit(2)
}

// loadInput loads sessions either from a per-session directory or from a
// single aggregated log file (sessionized by container ID).
func loadInput(fw logging.Framework, dir, aggregated string) ([]*logging.Session, error) {
	if aggregated != "" {
		// Map rather than read: batch inputs parse straight out of the
		// page cache, and the records' message strings are views into
		// the (process-lifetime) mapping.
		data, err := logging.MapFile(aggregated)
		if err != nil {
			return nil, err
		}
		recs := logging.ParseLinesBytes(logging.FormatterFor(fw), data)
		sessions := logging.SplitBySession(recs, nil)
		if len(sessions) == 0 {
			return nil, fmt.Errorf("no sessions found in aggregated log %s", aggregated)
		}
		return sessions, nil
	}
	return loadSessions(fw, dir)
}

// loadSessions reads every *.log file in dir as one session.
func loadSessions(fw logging.Framework, dir string) ([]*logging.Session, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	formatter := logging.FormatterFor(fw)
	var sessions []*logging.Session
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".log") || e.Name() == "yarn-daemon.log" {
			continue
		}
		data, err := logging.MapFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		id := strings.TrimSuffix(e.Name(), ".log")
		recs := logging.ParseLinesBytes(formatter, data)
		s := &logging.Session{ID: id, Framework: fw}
		for i := range recs {
			recs[i].SessionID = id
			s.Records = append(s.Records, recs[i])
		}
		if s.Len() > 0 {
			sessions = append(sessions, s)
		}
	}
	if len(sessions) == 0 {
		return nil, fmt.Errorf("no sessions found in %s", dir)
	}
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].ID < sessions[j].ID })
	return sessions, nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	framework := fs.String("framework", "spark", "spark | mapreduce | tez | tensorflow | flink | hdfs | yarn-rm")
	logs := fs.String("logs", "", "directory of session logs from normal runs")
	aggregated := fs.String("aggregated", "", "single aggregated log file (sessionized by container ID)")
	model := fs.String("model", "model.json", "output model file")
	threshold := fs.Float64("threshold", 1.7, "Spell matching threshold t")
	fs.Parse(args)

	fw, err := parseFramework(*framework)
	if err != nil {
		return err
	}
	sessions, err := loadInput(fw, *logs, *aggregated)
	if err != nil {
		return err
	}
	m := core.Train(sessions, core.Config{SpellThreshold: *threshold})
	f, err := os.Create(*model)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	fmt.Printf("trained on %d sessions: %d Intel Keys, %d entity groups (%d critical) -> %s\n",
		len(sessions), len(m.Keys), len(m.Graph.Nodes), len(m.Graph.CriticalGroups()), *model)
	return nil
}

func loadModel(path string) (*core.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.Load(f)
}

func cmdDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	framework := fs.String("framework", "spark", "spark | mapreduce | tez | tensorflow | flink | hdfs | yarn-rm")
	logs := fs.String("logs", "", "directory of session logs to check")
	aggregated := fs.String("aggregated", "", "single aggregated log file (sessionized by container ID)")
	model := fs.String("model", "model.json", "trained model file")
	fs.Parse(args)

	fw, err := parseFramework(*framework)
	if err != nil {
		return err
	}
	m, err := loadModel(*model)
	if err != nil {
		return err
	}
	sessions, err := loadInput(fw, *logs, *aggregated)
	if err != nil {
		return err
	}
	report := m.Detect(sessions)
	fmt.Print(report.Summary())
	for _, a := range report.Anomalies {
		switch a.Kind {
		case detect.UnexpectedMessage:
			fmt.Printf("  [%s] %s (group %q): %s\n", a.Session, a.Kind, a.Group, a.Record.Message)
		default:
			fmt.Printf("  [%s] %s: %s\n", a.Session, a.Kind, a.Detail)
		}
	}
	return nil
}

func cmdGraph(args []string) error {
	fs := flag.NewFlagSet("graph", flag.ExitOnError)
	model := fs.String("model", "model.json", "trained model file")
	fs.Parse(args)

	m, err := loadModel(*model)
	if err != nil {
		return err
	}
	fmt.Print(m.Graph.Render())
	fmt.Println("\nsubroutines (critical groups):")
	for _, name := range m.Graph.CriticalGroups() {
		node := m.Graph.Nodes[name]
		for sig, sub := range node.Subroutines {
			if sig == "" {
				sig = "NONE"
			}
			fmt.Printf("  %s / %s: %d keys (%d critical)\n", name, sig, len(sub.Keys), sub.CriticalLen())
		}
	}
	return nil
}

// cmdKeys prints every Intel Key with its extracted semantics — the
// inspection view of the §3 pipeline's output.
func cmdKeys(args []string) error {
	fs := flag.NewFlagSet("keys", flag.ExitOnError)
	model := fs.String("model", "model.json", "trained model file")
	entity := fs.String("entity", "", "only keys that extracted this entity")
	fs.Parse(args)

	m, err := loadModel(*model)
	if err != nil {
		return err
	}
	ids := make([]int, 0, len(m.Keys))
	for id := range m.Keys {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		ik := m.Keys[id]
		if *entity != "" && !ik.HasEntity(*entity) {
			continue
		}
		fmt.Printf("key %3d: %s\n", id, ik.String())
		if len(ik.Entities) > 0 {
			fmt.Printf("         entities: %s\n", strings.Join(ik.Entities, ", "))
		}
		if types := ik.IdentifierTypes(); len(types) > 0 {
			fmt.Printf("         identifiers: %s\n", strings.Join(types, ", "))
		}
		if len(ik.Operations) > 0 {
			var ops []string
			for _, op := range ik.Operations {
				ops = append(ops, op.String())
			}
			fmt.Printf("         operations: %s\n", strings.Join(ops, " "))
		}
		if !ik.NaturalLanguage {
			fmt.Printf("         (non-NL: on the ignore list)\n")
		}
	}
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	framework := fs.String("framework", "spark", "spark | mapreduce | tez | tensorflow | flink | hdfs | yarn-rm")
	logs := fs.String("logs", "", "directory of session logs")
	model := fs.String("model", "model.json", "trained model file")
	entity := fs.String("entity", "", "filter: messages whose key extracted this entity")
	groupBy := fs.String("groupby", "", "group results by this identifier type (e.g. FETCHER)")
	locality := fs.String("locality", "", "group results by this locality class (e.g. ADDR)")
	asJSON := fs.Bool("json", false, "dump matching Intel Messages as JSON")
	fs.Parse(args)

	fw, err := parseFramework(*framework)
	if err != nil {
		return err
	}
	m, err := loadModel(*model)
	if err != nil {
		return err
	}
	sessions, err := loadSessions(fw, *logs)
	if err != nil {
		return err
	}
	store := intelstore.New(m.Messages(sessions))
	if *entity != "" {
		store = store.WithEntity(*entity)
	}
	if *asJSON {
		return store.ExportJSON(os.Stdout)
	}
	switch {
	case *groupBy != "":
		printGroups(store.GroupByIdentifier(*groupBy))
	case *locality != "":
		printGroups(store.GroupByLocality(*locality))
	default:
		fmt.Printf("%d Intel Messages in %d sessions\n", store.Len(), len(store.Sessions()))
	}
	return nil
}

func printGroups(groups map[string]*intelstore.Store) {
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-40s %6d messages\n", k, groups[k].Len())
	}
}

func parseFramework(s string) (logging.Framework, error) {
	switch strings.ToLower(s) {
	case "spark":
		return logging.Spark, nil
	case "mapreduce", "mr":
		return logging.MapReduce, nil
	case "tez":
		return logging.Tez, nil
	case "tensorflow", "tf":
		return logging.TensorFlow, nil
	case "flink":
		return logging.Flink, nil
	case "hdfs":
		return logging.HDFS, nil
	case "yarn-rm", "yarnrm":
		return logging.YarnRM, nil
	default:
		return "", fmt.Errorf("unknown framework %q (want spark, mapreduce, tez, tensorflow, flink, hdfs or yarn-rm)", s)
	}
}
