// Command intellogd is the IntelLog serving daemon: a multi-tenant HTTP
// service that ingests NDJSON log-record batches into per-tenant
// streaming detectors and serves anomaly, report and HW-graph queries.
//
// Usage:
//
//	intellogd -addr :7171 -models ./models -state ./state
//
// Each tenant is a trained model file <models>/<tenant>.json (as written
// by `intellog train`). Checkpoints land in <state>/<tenant>.ckpt; on
// restart the daemon resumes every checkpointed tenant mid-stream.
// SIGTERM/SIGINT triggers a graceful drain: the listener stops, queued
// ingest is consumed, final checkpoints are written, and the process
// exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime/debug"
	"syscall"
	"time"

	"intellog/internal/analytics"
	"intellog/internal/detect"
	"intellog/internal/logging"
	"intellog/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":7171", "listen address")
		streamAddr = flag.String("stream-addr", "", "binary ingest protocol listen address (empty disables)")
		models     = flag.String("models", "models", "directory of trained models (<tenant>.json)")
		state      = flag.String("state", "", "checkpoint directory (<tenant>.ckpt); empty disables checkpointing")
		maxTenants = flag.Int("max-tenants", 32, "resident tenant cap (LRU eviction past it; <0 unbounded)")
		queue      = flag.Int("queue", 8192, "per-tenant ingest queue budget in records (429 past it)")
		workers    = flag.Int("ingest-workers", 1, "per-tenant ingest workers (session-sharded; 1 = serial pipeline)")
		anomalyLog = flag.Int("anomaly-log", 65536, "per-tenant retained anomaly window (<0 unbounded)")
		ckptEvery  = flag.Duration("checkpoint-every", 30*time.Second, "background checkpoint cadence (0 disables)")
		idle       = flag.Duration("idle", 5*time.Minute, "session idle timeout before auto-close (0 disables)")
		maxSess    = flag.Int("max-sessions", 0, "in-flight session cap per tenant (0 unbounded)")
		maxMsgs    = flag.Int("max-msgs", 0, "per-session buffered message cap (0 unbounded)")
		shards     = flag.Int("shards", 0, "stream detector shards per tenant (0 = default)")
		framework  = flag.String("framework", "spark", "default framework for records that carry none: spark | mapreduce | tez")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "in-flight HTTP request drain budget on shutdown")

		walOn       = flag.Bool("wal", true, "write-ahead-log acked batches (needs -state; crash recovery replays the un-checkpointed suffix)")
		walSync     = flag.String("wal-sync", "interval", "WAL fsync policy: always | interval | none")
		walSyncEvry = flag.Duration("wal-sync-every", 100*time.Millisecond, "max un-fsynced WAL window under -wal-sync interval")
		walSegBytes = flag.Int64("wal-segment-bytes", 8<<20, "WAL segment rotation size")
		maxRecBytes = flag.Int("max-record-bytes", 1<<20, "single-record size cap; larger records dead-letter instead of ingesting")
		dlqRetain   = flag.Int("dlq-retain", 4096, "per-tenant dead-letter retention in records (<0 unbounded)")

		clusterThreshold = flag.Float64("cluster-threshold", 0, "anomaly cluster cosine similarity threshold (0 = default 0.60)")
		rollupWindow     = flag.Duration("rollup-window", 0, "rollup bucket width (0 = default 1m)")
		sloBudget        = flag.Float64("slo-budget", 0, "anomaly budget per rollup window for burn-rate alerts (0 = default 10)")

		gomemlimit = flag.Int64("gomemlimit", 0, "runtime soft memory limit in bytes (debug.SetMemoryLimit; 0 leaves GOMEMLIMIT alone)")
		gogc       = flag.Int("gogc", 0, "GC target percentage (debug.SetGCPercent; 0 leaves GOGC alone, <0 disables the collector)")
	)
	flag.Parse()

	// GC shaping comes first, before tenants load: with the pooled batch
	// path keeping the steady-state heap small, a memory limit plus a
	// higher GOGC lets deployments trade idle RAM for fewer collections.
	if *gomemlimit > 0 {
		debug.SetMemoryLimit(*gomemlimit)
	}
	if *gogc != 0 {
		debug.SetGCPercent(*gogc)
	}

	srv, err := server.New(server.Config{
		ModelDir:        *models,
		StateDir:        *state,
		MaxTenants:      *maxTenants,
		QueueRecords:    *queue,
		IngestWorkers:   *workers,
		AnomalyLog:      *anomalyLog,
		CheckpointEvery: *ckptEvery,
		Stream: detect.StreamConfig{
			IdleTimeout:    *idle,
			MaxSessions:    *maxSess,
			MaxSessionMsgs: *maxMsgs,
			Shards:         *shards,
		},
		DefaultFramework: logging.Framework(*framework),
		DisableWAL:       !*walOn,
		WALSync:          *walSync,
		WALSyncEvery:     *walSyncEvry,
		WALSegmentBytes:  *walSegBytes,
		MaxRecordBytes:   *maxRecBytes,
		DLQRetain:        *dlqRetain,
		Analytics: analytics.Config{
			Threshold: *clusterThreshold,
			Window:    *rollupWindow,
			Budget:    *sloBudget,
		},
	})
	if err != nil {
		log.Fatalf("intellogd: %v", err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	var streamLn net.Listener
	if *streamAddr != "" {
		streamLn, err = net.Listen("tcp", *streamAddr)
		if err != nil {
			log.Fatalf("intellogd: stream listener: %v", err)
		}
		go func() {
			if err := srv.ServeStream(streamLn); err != nil {
				errCh <- err
			}
		}()
	}
	log.Printf("intellogd: serving on %s (stream=%s models=%s state=%s)",
		*addr, orNone(*streamAddr), *models, orNone(*state))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		log.Printf("intellogd: %v, draining", s)
	case err := <-errCh:
		log.Fatalf("intellogd: listener: %v", err)
	}

	// Stop the listeners first so no new ingest races the drain, then let
	// the serving layer consume what it already accepted and write final
	// checkpoints (Close also severs live stream connections).
	if streamLn != nil {
		streamLn.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("intellogd: http shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Fatalf("intellogd: drain: %v", err)
	}
	log.Printf("intellogd: drained, exiting")
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}
