#!/usr/bin/env sh
# check.sh — the repo's one-command gate: format, vet, build, race-clean
# tests, and a short pass over the throughput benchmarks so performance
# regressions surface before review.
#
#   scripts/check.sh            # full gate
#   BENCH=0 scripts/check.sh    # skip the benchmark pass
#
# Setting INTELLOG_BENCH_JSON=BENCH_spell.json before the bench pass
# archives each benchmark's headline numbers (see bench_throughput_test.go).
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt needed on:" >&2
	echo "$fmt" >&2
	exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

if [ "${BENCH:-1}" = "1" ]; then
	echo "==> throughput benchmarks (short)"
	go test -run '^$' -bench 'Throughput|^BenchmarkTraining$' -benchmem -benchtime 2x .
	go test -run '^$' -bench 'ConsumeColdStart|LookupSteadyState|LookupCache' -benchmem -benchtime 100x ./internal/spell/
fi

echo "==> OK"
