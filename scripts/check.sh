#!/usr/bin/env sh
# check.sh — the repo's one-command gate: format, vet, build, race-clean
# tests, and a short pass over the throughput benchmarks so performance
# regressions surface before review.
#
#   scripts/check.sh            # full gate
#   BENCH=0 scripts/check.sh    # skip the benchmark pass + regression guard
#   FUZZ=1 scripts/check.sh     # also run the native fuzz targets
#   FUZZTIME=60s FUZZ=1 ...     # with a larger per-target budget
#   SERVE=1 scripts/check.sh    # also run the serving-mode smoke test
#   WAL=1 scripts/check.sh      # also run the WAL crash-durability smoke test
#
# Setting INTELLOG_BENCH_JSON=BENCH_spell.json before the bench pass
# archives the Spell benchmarks' headline numbers, and
# INTELLOG_BENCH_DETECT_JSON=BENCH_detect.json the conformance detection
# benchmarks' (see bench_throughput_test.go and
# internal/conformance/bench_test.go).
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt needed on:" >&2
	echo "$fmt" >&2
	exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

if [ "${BENCH:-1}" = "1" ]; then
	# The archived throughput benchmarks run inside the regression guard,
	# which compares their logs/sec against the committed BENCH_*.json
	# baselines (tolerance band; see bench_compare.sh for knobs).
	scripts/bench_compare.sh
	echo "==> microbenchmarks (short)"
	go test -run '^$' -bench '^BenchmarkTraining$' -benchmem -benchtime 2x .
	go test -run '^$' -bench 'ConsumeColdStart|LookupSteadyState|LookupCache' -benchmem -benchtime 100x ./internal/spell/
fi

if [ "${FUZZ:-0}" = "1" ]; then
	ft="${FUZZTIME:-20s}"
	echo "==> native fuzz targets (${ft} each)"
	go test -run '^$' -fuzz '^FuzzSpellConsume$' -fuzztime "$ft" ./internal/spell/
	go test -run '^$' -fuzz '^FuzzExtract$' -fuzztime "$ft" ./internal/extract/
	go test -run '^$' -fuzz '^FuzzStreamConsume$' -fuzztime "$ft" ./internal/detect/
	go test -run '^$' -fuzz '^FuzzCheckpointRoundTrip$' -fuzztime "$ft" ./internal/core/
	go test -run '^$' -fuzz '^FuzzWireFrame$' -fuzztime "$ft" ./internal/server/
	go test -run '^$' -fuzz '^FuzzWALSegment$' -fuzztime "$ft" ./internal/wal/
	go test -run '^$' -fuzz '^FuzzCorpusLoader$' -fuzztime "$ft" ./internal/corpus/
fi

if [ "${SERVE:-0}" = "1" ]; then
	echo "==> serving-mode smoke (boot intellogd, HTTP replay, metrics, SIGTERM drain)"
	scripts/serve_smoke.sh
fi

if [ "${WAL:-0}" = "1" ]; then
	echo "==> WAL crash smoke (ack, SIGKILL, boot replay, DLQ, byte-identical report)"
	scripts/wal_crash_smoke.sh
fi

echo "==> OK"
