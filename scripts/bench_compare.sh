#!/usr/bin/env sh
# bench_compare.sh — the bench regression guard: re-run the archived
# throughput benchmarks, then compare their logs/sec against the
# committed baselines (BENCH_spell.json, BENCH_detect.json) with a
# tolerance band. Exits nonzero when any benchmark falls more than
# TOLERANCE below its baseline — or, with REFRESH=1, rewrites the
# committed baselines in place instead of comparing (run that on the
# machine that produced them; the archives are per-machine numbers).
#
#   scripts/bench_compare.sh                 # guard at the default band
#   TOLERANCE=0.20 scripts/bench_compare.sh  # tighter band
#   ALLOC_TOLERANCE=0.10 scripts/bench_compare.sh  # tighter alloc band
#   REFRESH=1 scripts/bench_compare.sh       # refresh the baselines
#
# BENCHTIME tunes the per-benchmark iteration count (default 2x — quick
# and noisy; raise it when chasing a marginal failure). Wall-clock
# numbers on shared CI runners swing well past what a local box shows,
# hence the wide default band and the report-only CI job.
set -eu

cd "$(dirname "$0")/.."

tol="${TOLERANCE:-0.35}"
# Allocation counts are far less noisy than wall-clock throughput, so
# the allocs-per-record guard holds a tighter band by default.
alloc_tol="${ALLOC_TOLERANCE:-0.20}"
bt="${BENCHTIME:-2x}"

# The bench processes run in their package directories, so archive
# paths must be absolute.
root=$(pwd)

if [ "${REFRESH:-0}" = "1" ]; then
	spell_out="$root/BENCH_spell.json"
	detect_out="$root/BENCH_detect.json"
	echo "==> refreshing committed baselines (benchtime $bt)"
else
	tmp=$(mktemp -d)
	trap 'rm -rf "$tmp"' EXIT INT TERM
	spell_out="$tmp/spell.json"
	detect_out="$tmp/detect.json"
	echo "==> bench regression guard (benchtime $bt, tolerance $tol)"
fi

INTELLOG_BENCH_JSON="$spell_out" \
	go test -run '^$' -bench 'SpellThroughput|StreamDetectThroughput' \
	-benchmem -benchtime "$bt" .
INTELLOG_BENCH_DETECT_JSON="$detect_out" \
	go test -run '^$' -bench 'ConformanceBatchDetect|ConformanceStreamDetect|ClusterIngest' \
	-benchmem -benchtime "$bt" ./internal/conformance/

if [ "${REFRESH:-0}" = "1" ]; then
	echo "==> baselines refreshed: BENCH_spell.json BENCH_detect.json"
	exit 0
fi

echo "==> compare vs committed baselines"
go run ./cmd/benchdiff -baseline BENCH_spell.json -current "$spell_out" \
	-metric logs_per_sec -tolerance "$tol"
go run ./cmd/benchdiff -baseline BENCH_detect.json -current "$detect_out" \
	-metric logs_per_sec -tolerance "$tol"

# The GC-pressure guard: allocations per record must not creep back up
# (lower is better; the pooled batch path is what keeps this flat).
echo "==> compare allocs/record vs committed baselines"
go run ./cmd/benchdiff -baseline BENCH_detect.json -current "$detect_out" \
	-metric allocs_per_record -direction lower -tolerance "$alloc_tol"
echo "==> bench guard OK"
