#!/usr/bin/env sh
# profile_serve.sh — capture CPU, heap and allocation profiles from
# intellogd under replay load, via the daemon's /debug/pprof endpoints,
# plus a GC/batch-pool stats snapshot from /metrics. The profiles land
# under profiles/ next to a matching .txt top-listing; TESTING.md
# describes how to read them.
#
#   scripts/profile_serve.sh              # 10s CPU profile + heap/allocs snapshots
#   SECONDS_CPU=30 scripts/profile_serve.sh
#   JOBS=64 WORKERS=8 scripts/profile_serve.sh
#
# The replay loops the corpus continuously while the CPU profile runs,
# so the profile sees a steady ingest stream rather than a cold start
# and an idle tail.
set -eu

cd "$(dirname "$0")/.."

cpu_secs="${SECONDS_CPU:-10}"
jobs="${JOBS:-16}"
ingest_workers="${WORKERS:-4}"
outdir="profiles"
mkdir -p "$outdir"

work=$(mktemp -d)
daemon_pid=""
load_pid=""
cleanup() {
	for pid in "$load_pid" "$daemon_pid"; do
		if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
			kill -KILL "$pid" 2>/dev/null || true
		fi
	done
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "==> build"
go build -o "$work/intellogd" ./cmd/intellogd
go build -o "$work/intellog" ./cmd/intellog
go build -o "$work/loggen" ./cmd/loggen

echo "==> train tenant model + generate replay corpus"
"$work/loggen" -framework spark -jobs 6 -fault none -seed 11 -out "$work/train-logs"
mkdir -p "$work/models"
"$work/intellog" train -framework spark -logs "$work/train-logs" -model "$work/models/prof.json"
"$work/loggen" -framework spark -jobs "$jobs" -fault kill -seed 12 -out "$work/replay-logs"

echo "==> boot intellogd (ingest-workers=$ingest_workers)"
addr="127.0.0.1:7874"
"$work/intellogd" -addr "$addr" -models "$work/models" \
	-ingest-workers "$ingest_workers" -checkpoint-every 0 -idle 0 \
	>"$work/intellogd.log" 2>&1 &
daemon_pid=$!
"$work/intellog" bench-serve -server "http://$addr" -tenant prof -framework spark \
	-logs "$work/replay-logs" -batch 512 -concurrency 4 -wait 10s -no-flush >/dev/null

echo "==> replay loop in background"
(
	while :; do
		"$work/intellog" bench-serve -server "http://$addr" -tenant prof \
			-framework spark -logs "$work/replay-logs" -batch 512 \
			-concurrency 4 -no-flush >/dev/null 2>&1 || exit 0
	done
) &
load_pid=$!

echo "==> capture CPU profile (${cpu_secs}s) + heap/allocs snapshots"
curl -fsS -o "$outdir/cpu-serve.pb.gz" \
	"http://$addr/debug/pprof/profile?seconds=$cpu_secs"
curl -fsS -o "$outdir/heap-serve.pb.gz" \
	"http://$addr/debug/pprof/heap?gc=1"
curl -fsS -o "$outdir/allocs-serve.pb.gz" \
	"http://$addr/debug/pprof/allocs"

# GC + batch-pool counters, scraped while the load loop is still
# running: the alloc/GC view the profiles can't show (pool hit rates,
# pause totals, the runtime's GC CPU fraction).
curl -fsS "http://$addr/metrics" |
	grep -E '^intellogd_(gc_|heap_|mallocs_|batch_pool_|ingest_records_)' \
		>"$outdir/gc-serve.txt" || true

kill -KILL "$load_pid" 2>/dev/null || true
load_pid=""
kill -TERM "$daemon_pid" 2>/dev/null || true
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

echo "==> render top listings"
go tool pprof -top -nodecount 25 "$work/intellogd" "$outdir/cpu-serve.pb.gz" \
	>"$outdir/cpu-serve.txt"
go tool pprof -top -nodecount 25 -sample_index=alloc_space "$work/intellogd" \
	"$outdir/heap-serve.pb.gz" >"$outdir/heap-serve.txt"
go tool pprof -top -nodecount 25 -sample_index=alloc_objects "$work/intellogd" \
	"$outdir/allocs-serve.pb.gz" >"$outdir/allocs-serve.txt"

echo "==> profiles written:"
ls -l "$outdir"
