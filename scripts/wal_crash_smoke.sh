#!/usr/bin/env sh
# wal_crash_smoke.sh — end-to-end crash-durability smoke test of the
# write-ahead log and the dead-letter queue, as run by the CI
# wal-crash-smoke job:
#
#   1. build intellogd, intellog and loggen
#   2. train a tenant model and generate a replay corpus
#   3. reference run: a stateless daemon ingests the corpus serially,
#      flushes, and its /v1/report is saved verbatim
#   4. crash run: a stateful daemon (-checkpoint-every 0, so nothing is
#      ever checkpointed) acks the whole corpus and is SIGKILLed — every
#      acked record now exists only in the WAL
#   5. restart over the same state dir; assert /metrics reports the full
#      corpus in intellogd_wal_replayed_records (no acked record lost)
#   6. dead-letter leg: POST a malformed record, assert it is quarantined
#      (202 + deadLettered), listed on /v1/dlq, still-failed on requeue,
#      and visible as intellogd_dlq_depth
#   7. flush and require the restarted daemon's /v1/report to be
#      byte-identical to the never-crashed reference
#
# Everything lands in a scratch dir and is cleaned up on exit.
set -eu

cd "$(dirname "$0")/.."

work=$(mktemp -d)
daemon_pid=""
cleanup() {
	if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
		kill -KILL "$daemon_pid" 2>/dev/null || true
	fi
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

wait_ready() {
	i=0
	until curl -fsS "http://$1/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -ge 200 ]; then
			echo "daemon on $1 never became ready" >&2
			return 1
		fi
		sleep 0.1
	done
}

echo "==> build"
go build -o "$work/intellogd" ./cmd/intellogd
go build -o "$work/intellog" ./cmd/intellog
go build -o "$work/loggen" ./cmd/loggen

echo "==> train tenant model"
"$work/loggen" -framework spark -jobs 6 -fault none -seed 11 -out "$work/train-logs"
mkdir -p "$work/models" "$work/state"
"$work/intellog" train -framework spark -logs "$work/train-logs" -model "$work/models/smoke.json"

echo "==> generate replay corpus"
"$work/loggen" -framework spark -jobs 4 -fault kill -seed 12 -out "$work/replay-logs"

# --- reference: a clean, never-crashed run ------------------------------
echo "==> reference run (no crash)"
ref_addr="127.0.0.1:7971"
"$work/intellogd" -addr "$ref_addr" -models "$work/models" \
	-idle 0 >"$work/ref.log" 2>&1 &
daemon_pid=$!
"$work/intellog" bench-serve -server "http://$ref_addr" -tenant smoke -framework spark \
	-logs "$work/replay-logs" -batch 128 -concurrency 1 -wait 10s -no-flush
curl -fsS -X POST "http://$ref_addr/v1/flush?tenant=smoke" >/dev/null
curl -fsS "http://$ref_addr/v1/report?tenant=smoke" >"$work/ref-report.json"
kill -TERM "$daemon_pid" && wait "$daemon_pid" || true
daemon_pid=""

# --- crash run: ack everything, checkpoint nothing, SIGKILL -------------
echo "==> crash run (WAL only, -checkpoint-every 0)"
addr="127.0.0.1:7972"
"$work/intellogd" -addr "$addr" -models "$work/models" -state "$work/state" \
	-checkpoint-every 0 -idle 0 >"$work/crash.log" 2>&1 &
daemon_pid=$!
"$work/intellog" bench-serve -server "http://$addr" -tenant smoke -framework spark \
	-logs "$work/replay-logs" -batch 128 -concurrency 1 -wait 10s -no-flush
echo "==> SIGKILL with every acked record un-checkpointed"
kill -KILL "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
if ls "$work/state/smoke.ckpt" >/dev/null 2>&1; then
	echo "unexpected checkpoint: the crash window was supposed to cover the whole corpus" >&2
	exit 1
fi

echo "==> restart over the same state dir (boot replay)"
"$work/intellogd" -addr "$addr" -models "$work/models" -state "$work/state" \
	-checkpoint-every 0 -idle 0 >"$work/restart.log" 2>&1 &
daemon_pid=$!
wait_ready "$addr"

curl -fsS "http://$addr/metrics" >"$work/metrics.txt"
replayed=$(awk '/^intellogd_wal_replayed_records\{tenant="smoke"\}/ {print $2}' "$work/metrics.txt")
if [ -z "$replayed" ] || [ "$replayed" = "0" ]; then
	echo "intellogd_wal_replayed_records = '${replayed:-missing}'; boot replay recovered nothing" >&2
	cat "$work/restart.log" >&2
	exit 1
fi
echo "==> boot replay recovered $replayed acked records"

echo "==> dead-letter leg"
ingest=$(printf '{"message":"broken json","sessionId":\n' |
	curl -fsS -X POST --data-binary @- -H 'Content-Type: application/x-ndjson' \
		"http://$addr/v1/ingest?tenant=smoke")
case "$ingest" in
*'"deadLettered":1'*) ;;
*)
	echo "malformed record was not dead-lettered: $ingest" >&2
	exit 1
	;;
esac
dlq=$(curl -fsS "http://$addr/v1/dlq?tenant=smoke")
case "$dlq" in
*'"depth":1'*'"reason":"invalid JSON'* | *'"reason":"invalid JSON'*'"depth":1'*) ;;
*)
	echo "/v1/dlq does not list the quarantined record: $dlq" >&2
	exit 1
	;;
esac
requeue=$(curl -fsS -X POST "http://$addr/v1/dlq/requeue?tenant=smoke")
case "$requeue" in
*'"failed":1'*) ;;
*)
	echo "requeue of a still-broken record did not report it failed: $requeue" >&2
	exit 1
	;;
esac
curl -fsS "http://$addr/metrics" | grep -q '^intellogd_dlq_depth{tenant="smoke"} 1$' || {
	echo "intellogd_dlq_depth does not expose the quarantined record" >&2
	exit 1
}

echo "==> compare the recovered stream with the clean reference"
curl -fsS -X POST "http://$addr/v1/flush?tenant=smoke" >/dev/null
curl -fsS "http://$addr/v1/report?tenant=smoke" >"$work/crash-report.json"
if ! cmp -s "$work/ref-report.json" "$work/crash-report.json"; then
	echo "recovered report diverges from the never-crashed reference" >&2
	echo "--- reference:" >&2
	head -c 2000 "$work/ref-report.json" >&2
	echo "" >&2
	echo "--- recovered:" >&2
	head -c 2000 "$work/crash-report.json" >&2
	exit 1
fi

kill -TERM "$daemon_pid"
wait "$daemon_pid" || true
daemon_pid=""

echo "==> wal crash smoke OK"
