#!/usr/bin/env sh
# serve_smoke.sh — end-to-end smoke test of the serving mode, as run by
# the CI serve-smoke job:
#
#   1. build intellogd, intellog and loggen
#   2. generate a training corpus and train a tenant model
#   3. generate a faulted replay corpus
#   4. boot intellogd against the model dir
#   5. replay the corpus over HTTP with bench-serve (which also asserts
#      the /metrics scrape carries the serving series)
#   6. SIGTERM the daemon and require a clean drain (exit 0)
#
# Everything lands in a scratch dir and is cleaned up on exit.
set -eu

cd "$(dirname "$0")/.."

work=$(mktemp -d)
daemon_pid=""
cleanup() {
	if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
		kill -KILL "$daemon_pid" 2>/dev/null || true
	fi
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "==> build"
go build -o "$work/intellogd" ./cmd/intellogd
go build -o "$work/intellog" ./cmd/intellog
go build -o "$work/loggen" ./cmd/loggen

echo "==> train tenant model"
"$work/loggen" -framework spark -jobs 6 -fault none -seed 11 -out "$work/train-logs"
mkdir -p "$work/models" "$work/state"
"$work/intellog" train -framework spark -logs "$work/train-logs" -model "$work/models/smoke.json"

echo "==> generate replay corpus"
"$work/loggen" -framework spark -jobs 4 -fault kill -seed 12 -out "$work/replay-logs"

echo "==> boot intellogd"
addr="127.0.0.1:7871"
"$work/intellogd" -addr "$addr" -models "$work/models" -state "$work/state" \
	-checkpoint-every 2s -idle 0 >"$work/intellogd.log" 2>&1 &
daemon_pid=$!

echo "==> replay over HTTP"
"$work/intellog" bench-serve -server "http://$addr" -tenant smoke -framework spark \
	-logs "$work/replay-logs" -batch 128 -concurrency 4 -wait 10s \
	-bench-json "$work/BENCH_server.json" -check-metrics

echo "==> graceful drain (SIGTERM)"
kill -TERM "$daemon_pid"
status=0
wait "$daemon_pid" || status=$?
daemon_pid=""
if [ "$status" -ne 0 ]; then
	echo "intellogd did not drain cleanly (exit $status); log follows:" >&2
	cat "$work/intellogd.log" >&2
	exit 1
fi

# The drain must have left a final checkpoint behind.
if [ ! -f "$work/state/smoke.ckpt" ]; then
	echo "drain left no checkpoint in $work/state" >&2
	exit 1
fi

echo "==> serve smoke OK"
