#!/usr/bin/env sh
# bench_serve.sh — measure serving throughput and archive it in
# BENCH_serve.json (the serving analogue of BENCH_spell.json /
# BENCH_detect.json): build the binaries, train a tenant, boot intellogd
# with a session-sharded ingest pool and the binary stream listener,
# replay a generated faulted corpus twice via `intellog bench-serve` —
# once over NDJSON HTTP, once over the length-prefixed binary protocol
# (-proto=stream) — and merge both sets of headline numbers into the
# archive at the repo root (serve_replay_spark and
# serve_replay_stream_spark). Alongside throughput and latency the
# client archives GC-pressure numbers scraped from the daemon's
# /metrics: allocs_per_record (malloc-counter delta across the replay)
# and gc_cpu_fraction.
#
#   scripts/bench_serve.sh                    # archive to BENCH_serve.json
#   OUT=/tmp/serve.json scripts/bench_serve.sh
#   JOBS=32 WORKERS=8 scripts/bench_serve.sh  # bigger corpus / wider pool
#
# Like the other BENCH_*.json archives the numbers are per-machine;
# refresh them on the machine whose history you are tracking.
set -eu

cd "$(dirname "$0")/.."

out="${OUT:-BENCH_serve.json}"
jobs="${JOBS:-16}"
ingest_workers="${WORKERS:-4}"

work=$(mktemp -d)
daemon_pid=""
cleanup() {
	if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
		kill -KILL "$daemon_pid" 2>/dev/null || true
	fi
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "==> build"
go build -o "$work/intellogd" ./cmd/intellogd
go build -o "$work/intellog" ./cmd/intellog
go build -o "$work/loggen" ./cmd/loggen

echo "==> train tenant model"
"$work/loggen" -framework spark -jobs 6 -fault none -seed 11 -out "$work/train-logs"
mkdir -p "$work/models"
"$work/intellog" train -framework spark -logs "$work/train-logs" -model "$work/models/bench.json"

echo "==> generate replay corpus ($jobs jobs)"
"$work/loggen" -framework spark -jobs "$jobs" -fault kill -seed 12 -out "$work/replay-logs"

echo "==> boot intellogd (ingest-workers=$ingest_workers)"
addr="127.0.0.1:7872"
stream_addr="127.0.0.1:7873"
"$work/intellogd" -addr "$addr" -stream-addr "$stream_addr" -models "$work/models" \
	-ingest-workers "$ingest_workers" -checkpoint-every 0 -idle 0 \
	>"$work/intellogd.log" 2>&1 &
daemon_pid=$!

echo "==> replay over NDJSON HTTP"
"$work/intellog" bench-serve -server "http://$addr" -tenant bench -framework spark \
	-logs "$work/replay-logs" -batch 512 -concurrency 4 -wait 10s \
	-bench-json "$out"

echo "==> replay over the binary stream protocol"
"$work/intellog" bench-serve -server "http://$addr" -tenant bench -framework spark \
	-proto stream -stream-addr "$stream_addr" \
	-logs "$work/replay-logs" -batch 512 -concurrency 4 -window 4 \
	-bench-json "$out"

kill -TERM "$daemon_pid"
wait "$daemon_pid" || true
daemon_pid=""
echo "==> archived to $out"
