package intellog

// End-to-end throughput benchmarks for the fast matching layer: Spell key
// extraction over a realistic training corpus and streaming anomaly
// detection over the same record stream. Both report logs/sec so runs are
// directly comparable across commits:
//
//	go test -bench Throughput -benchmem .
//
// Setting INTELLOG_BENCH_JSON=BENCH_spell.json additionally merges each
// bench's headline numbers into that JSON file (one object per benchmark),
// which scripts/check.sh uses to archive before/after evidence.

import (
	"os"
	"testing"

	"intellog/internal/benchjson"
	"intellog/internal/detect"
	"intellog/internal/logging"
	"intellog/internal/nlp"
	"intellog/internal/spell"
)

// writeBenchJSON merges one benchmark's metrics into the JSON archive
// named by INTELLOG_BENCH_JSON (no-op when unset). The conformance
// detection benchmarks archive to INTELLOG_BENCH_DETECT_JSON with the
// same schema (see internal/conformance).
func writeBenchJSON(b *testing.B, name string, metrics map[string]float64) {
	if err := benchjson.Merge(os.Getenv("INTELLOG_BENCH_JSON"), name, metrics); err != nil {
		b.Fatal(err)
	}
}

// throughputRecords flattens a framework's training sessions into one
// record stream, in session order.
func throughputRecords(fw logging.Framework) []logging.Record {
	var recs []logging.Record
	for _, s := range benchEnvironment().Training(fw) {
		recs = append(recs, s.Records...)
	}
	return recs
}

// BenchmarkSpellThroughput measures raw Spell training throughput: every
// record of the Spark corpus tokenized up front, then consumed into a
// fresh parser per iteration (the cold-start path that dominates Train).
func BenchmarkSpellThroughput(b *testing.B) {
	recs := throughputRecords(logging.Spark)
	tokens := make([][]string, len(recs))
	for i, r := range recs {
		tokens[i] = nlp.Texts(nlp.Tokenize(r.Message))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := spell.NewParser(0)
		for _, t := range tokens {
			p.Consume(t)
		}
		if len(p.Keys()) == 0 {
			b.Fatal("no keys extracted")
		}
	}
	logsPerSec := float64(len(tokens)*b.N) / b.Elapsed().Seconds()
	b.ReportMetric(logsPerSec, "logs/sec")
	writeBenchJSON(b, "BenchmarkSpellThroughput", map[string]float64{
		"logs_per_sec": logsPerSec,
		"logs_per_op":  float64(len(tokens)),
	})
}

// BenchmarkStreamDetectThroughput measures steady-state streaming
// detection: a trained model's detector (with its shared lookup cache)
// consuming the full Spark record stream one record at a time.
func BenchmarkStreamDetectThroughput(b *testing.B) {
	m := benchEnvironment().Model(logging.Spark)
	recs := throughputRecords(logging.Spark)
	d := m.Detector()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sd := detect.NewStreamDetector(d, 0)
		for _, r := range recs {
			sd.Consume(r)
		}
		sd.Flush()
	}
	logsPerSec := float64(len(recs)*b.N) / b.Elapsed().Seconds()
	b.ReportMetric(logsPerSec, "logs/sec")
	writeBenchJSON(b, "BenchmarkStreamDetectThroughput", map[string]float64{
		"logs_per_sec": logsPerSec,
		"logs_per_op":  float64(len(recs)),
	})
}
