// Package intellog is a from-scratch Go reproduction of IntelLog
// (Pi, Chen, Wang, Zhou — "Semantic-aware Workflow Construction and
// Analysis for Distributed Data Analytics Systems", HPDC 2019): an
// NLP-assisted, non-intrusive log-analysis tool that reconstructs the
// hierarchical workflows of distributed data analytics systems and
// detects anomalies against them.
//
// The public surface lives in the commands (cmd/intellog, cmd/loggen,
// cmd/experiments) and the runnable examples (examples/...); the library
// packages are under internal/ — see DESIGN.md for the inventory and
// EXPERIMENTS.md for the paper-vs-measured record.
package intellog
